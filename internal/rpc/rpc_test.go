package rpc

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"accelcloud/internal/tasks"
)

func TestOffloadRequestValidate(t *testing.T) {
	good := OffloadRequest{UserID: 1, Group: 2, BatteryLevel: 0.5, State: tasks.State{Task: "minimax"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []OffloadRequest{
		{UserID: -1, State: tasks.State{Task: "x"}},
		{Group: -1, State: tasks.State{Task: "x"}},
		{BatteryLevel: -0.1, State: tasks.State{Task: "x"}},
		{BatteryLevel: 1.1, State: tasks.State{Task: "x"}},
		{BatteryLevel: math.NaN(), State: tasks.State{Task: "x"}},
		{BatteryLevel: math.Inf(1), State: tasks.State{Task: "x"}},
		{BatteryLevel: math.Inf(-1), State: tasks.State{Task: "x"}},
		{UserID: math.MinInt, State: tasks.State{Task: "x"}},
		{},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("case %d should fail: %+v", i, r)
		}
	}
	// Boundary values are legal: exhausted and full batteries, user 0,
	// group 0, and very large ids.
	good2 := []OffloadRequest{
		{BatteryLevel: 0, State: tasks.State{Task: "x"}},
		{BatteryLevel: 1, State: tasks.State{Task: "x"}},
		{UserID: math.MaxInt, Group: math.MaxInt, BatteryLevel: 0.5, State: tasks.State{Task: "x"}},
	}
	for i, r := range good2 {
		if err := r.Validate(); err != nil {
			t.Fatalf("boundary case %d rejected: %+v: %v", i, r, err)
		}
	}
}

func TestWriteReadJSON(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusTeapot, map[string]int{"x": 7})
	if rec.Code != http.StatusTeapot {
		t.Fatalf("code = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var out map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["x"] != 7 {
		t.Fatalf("body = %q err = %v", rec.Body.String(), err)
	}

	req := httptest.NewRequest(http.MethodPost, "/x", strings.NewReader(`{"a": 1}`))
	var payload struct {
		A int `json:"a"`
	}
	if err := ReadJSON(req, &payload); err != nil || payload.A != 1 {
		t.Fatalf("ReadJSON: %v %+v", err, payload)
	}
	broken := httptest.NewRequest(http.MethodPost, "/x", strings.NewReader(`{broken`))
	if err := ReadJSON(broken, &payload); err == nil {
		t.Fatal("broken body should fail")
	}
}

func TestClientErrorPaths(t *testing.T) {
	// Non-200 status.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()
	if _, err := c.Execute(ctx, ExecuteRequest{}); err == nil {
		t.Fatal("500 should fail")
	}
	if err := c.Health(ctx); err == nil {
		t.Fatal("health on 500 should fail")
	}
	// Unreachable.
	dead := NewClient("http://127.0.0.1:1")
	dead.HTTPClient = &http.Client{Timeout: 200 * time.Millisecond}
	if _, err := dead.Execute(ctx, ExecuteRequest{}); err == nil {
		t.Fatal("unreachable should fail")
	}
	if err := dead.Health(ctx); err == nil {
		t.Fatal("unreachable health should fail")
	}
}

func TestClientRemoteErrorSurfaced(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, ExecuteResponse{Error: "no such task"})
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	if _, err := c.Execute(context.Background(), ExecuteRequest{}); err == nil ||
		!strings.Contains(err.Error(), "no such task") {
		t.Fatalf("remote error not surfaced: %v", err)
	}
}

func TestClientOffloadValidatesBeforeWire(t *testing.T) {
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		WriteJSON(w, http.StatusOK, OffloadResponse{})
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	if _, err := c.Offload(context.Background(), OffloadRequest{UserID: -1}); err == nil {
		t.Fatal("invalid request should fail client-side")
	}
	if calls != 0 {
		t.Fatal("invalid request must not reach the wire")
	}
}

func TestClientContextCancellation(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)
	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := c.Execute(ctx, ExecuteRequest{}); err == nil {
		t.Fatal("cancelled context should fail")
	}
}

func TestClientNilHTTPClientDefaults(t *testing.T) {
	c := &Client{BaseURL: "http://127.0.0.1:1"}
	// The pooled transport carries no overall timeout any more: the
	// deadline is context-propagated per call (Timeout / DefaultTimeout).
	if got := c.httpClient(); got == nil || got.Timeout != 0 {
		t.Fatalf("default client = %+v", got)
	}
	if got := c.timeout(); got != DefaultTimeout {
		t.Fatalf("default deadline = %v, want %v", got, DefaultTimeout)
	}
	c.Timeout = 5 * time.Second
	if got := c.timeout(); got != 5*time.Second {
		t.Fatalf("configured deadline = %v, want 5s", got)
	}
}

func TestClientsShareOnePooledTransport(t *testing.T) {
	// Every nil-HTTPClient rpc.Client must resolve to the same pooled
	// http.Client, and repeated httpClient() calls must not allocate —
	// the connection-churn bug this guards against was one fresh pool per
	// request.
	a, b := NewClient("http://a"), NewClient("http://b")
	if a.httpClient() != b.httpClient() {
		t.Fatal("distinct clients do not share the pooled transport")
	}
	if a.httpClient() != a.httpClient() {
		t.Fatal("httpClient() allocates per call")
	}
	// An explicit override still wins.
	own := &http.Client{Timeout: time.Second}
	c := &Client{BaseURL: "http://c", HTTPClient: own}
	if c.httpClient() != own {
		t.Fatal("explicit HTTPClient ignored")
	}
}

func TestClientConcurrentOffloads(t *testing.T) {
	// The shared transport must be race-free and reuse connections under
	// concurrent callers (run with -race in CI).
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, OffloadResponse{Server: "s", Group: 1})
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Offload(context.Background(), OffloadRequest{
				UserID: i, Group: 1, BatteryLevel: 1, State: tasks.State{Task: "x"},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent offload %d: %v", i, err)
		}
	}
}

func TestOffloadResponseRoundTrip(t *testing.T) {
	in := OffloadResponse{
		Result:  tasks.Result{Task: "minimax", Data: json.RawMessage(`{"bestMove":4}`), Ops: 99},
		Server:  "s1",
		Group:   2,
		Timings: Timings{RoutingMs: 150.5, BackendMs: 4.2, CloudMs: 212.8},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out OffloadResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Server != "s1" || out.Group != 2 || out.Timings.RoutingMs != 150.5 ||
		out.Result.Ops != 99 || string(out.Result.Data) != `{"bestMove":4}` {
		t.Fatalf("round trip = %+v", out)
	}
}
