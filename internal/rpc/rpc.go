// Package rpc defines the offloading wire protocol between mobile
// clients, the SDN-accelerator front-end, and surrogate back-ends: JSON
// over HTTP, carrying the serialized application state of the homogeneous
// offloading model (Fig 1a) plus the timing breakdown of Fig 7a
// (T1 mobile↔front-end, T2 front-end↔back-end, Tcloud execution).
package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"accelcloud/internal/tasks"
)

// Paths of the HTTP endpoints.
const (
	// PathOffload is the front-end entry point for mobile clients.
	PathOffload = "/offload"
	// PathExecute is the surrogate's execution endpoint.
	PathExecute = "/execute"
	// PathHealth reports liveness.
	PathHealth = "/healthz"
	// PathStats reports counters.
	PathStats = "/stats"
)

// maxBodyBytes bounds request bodies (application states are small; the
// homogeneous model ships method parameters, not bulk data).
const maxBodyBytes = 8 << 20

// OffloadRequest is a mobile client's request to the front-end.
type OffloadRequest struct {
	// UserID identifies the device.
	UserID int `json:"userId"`
	// Group is the acceleration group the device currently requests.
	Group int `json:"group"`
	// BatteryLevel is the device battery in [0, 1] (logged per §IV-A).
	BatteryLevel float64 `json:"batteryLevel"`
	// State is the serialized application state to execute.
	State tasks.State `json:"state"`
}

// Validate checks the request.
func (r OffloadRequest) Validate() error {
	if r.UserID < 0 {
		return fmt.Errorf("rpc: negative user id %d", r.UserID)
	}
	if r.Group < 0 {
		return fmt.Errorf("rpc: negative group %d", r.Group)
	}
	if math.IsNaN(r.BatteryLevel) || r.BatteryLevel < 0 || r.BatteryLevel > 1 {
		return fmt.Errorf("rpc: battery %v outside [0,1]", r.BatteryLevel)
	}
	if r.State.Task == "" {
		return errors.New("rpc: state without task name")
	}
	return nil
}

// Timings is the Fig 7a component breakdown, in milliseconds.
type Timings struct {
	// RoutingMs is the SDN-accelerator's processing overhead (≈150 ms
	// in the paper, Fig 8a).
	RoutingMs float64 `json:"routingMs"`
	// BackendMs is T2: front-end ↔ back-end communication.
	BackendMs float64 `json:"backendMs"`
	// CloudMs is Tcloud: code execution on the surrogate.
	CloudMs float64 `json:"cloudMs"`
}

// OffloadResponse is the front-end's reply.
type OffloadResponse struct {
	// Result is the execution outcome.
	Result tasks.Result `json:"result"`
	// Server identifies the surrogate that executed the request.
	Server string `json:"server"`
	// Group is the acceleration group that served the request.
	Group int `json:"group"`
	// Timings is the component breakdown.
	Timings Timings `json:"timings"`
	// Error carries a failure message ("" on success).
	Error string `json:"error,omitempty"`
}

// ExecuteRequest is the front-end → surrogate call.
type ExecuteRequest struct {
	State tasks.State `json:"state"`
}

// ExecuteResponse is the surrogate's reply.
type ExecuteResponse struct {
	Result tasks.Result `json:"result"`
	// CloudMs is the measured execution time on the surrogate.
	CloudMs float64 `json:"cloudMs"`
	Server  string  `json:"server"`
	Error   string  `json:"error,omitempty"`
}

// encodeBufPool recycles encode buffers across requests. The front-end
// marshals twice per proxied request (the surrogate hop and the client
// response); at load-generator concurrency the per-call allocations
// were a measurable share of the routing layer's GC pressure.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBufBytes caps what is returned to the pool so one huge
// application state doesn't pin its buffer forever.
const maxPooledBufBytes = 1 << 20

func getEncodeBuf() *bytes.Buffer { return encodeBufPool.Get().(*bytes.Buffer) }

func putEncodeBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBufBytes {
		return
	}
	b.Reset()
	encodeBufPool.Put(b)
}

// WriteJSON writes v with the given status code. The body is staged in
// a pooled buffer so the response carries a Content-Length and the
// encoder's scratch space is reused across requests.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	buf := getEncodeBuf()
	defer putEncodeBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Unencodable payloads are a programming error; the empty-body
		// status line is the only thing left to send.
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	// Write failures after the header is sent can only be logged by
	// the caller's middleware; the connection is already committed.
	_, _ = w.Write(buf.Bytes())
}

// ReadJSON decodes a bounded request body into v.
func ReadJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("rpc: read body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("rpc: decode body: %w", err)
	}
	return nil
}

// defaultHTTPClient is shared by every Client whose HTTPClient field is
// nil. A single pooled transport matters under load-generator
// concurrency: the previous per-call `&http.Client{}` allocation gave
// each request a fresh connection pool, so nothing was ever reused and
// every request paid a TCP handshake. Keep-alive limits are sized for
// hundreds of concurrent simulated users against a handful of hosts.
// The transport carries no overall timeout: per-request deadlines are
// context-propagated by Client (Timeout / DefaultTimeout), so a caller
// with a tighter deadline is never held to a transport-wide constant.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          1024,
		MaxIdleConnsPerHost:   256,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
	},
}

// Client calls an offloading HTTP endpoint. The zero configuration is
// a plain client with the default deadline; Timeout, Retry, and Hedge
// opt into the resilience ladder (deadline → retry budget → hedged
// second request) the chaos scenarios exercise.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the underlying transport; nil selects the shared
	// pooled client.
	HTTPClient *http.Client
	// Timeout bounds each call end to end — retries and hedges
	// included — as a context deadline (0 selects DefaultTimeout). A
	// caller context with an earlier deadline still wins.
	Timeout time.Duration
	// Retry, when non-nil, re-sends failed attempts under a bounded
	// budget with exponential backoff and seeded jitter.
	Retry *RetryPolicy
	// Hedge, when non-nil, races a delayed second request against a
	// slow primary.
	Hedge *HedgePolicy

	retries   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
}

// NewClient builds a client on the shared pooled transport.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// timeout reports the effective per-call deadline.
func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// Stats snapshots the resilience counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Retries:   c.retries.Load(),
		Hedges:    c.hedges.Load(),
		HedgeWins: c.hedgeWins.Load(),
	}
}

// pooledPayload is a marshaled request body backed by a pooled encode
// buffer, released to the pool only when its last reader is closed.
// Reference counting matters because the transport may read (and will
// close) a request body in a separate goroutine even after Do returns,
// and GetBody can mint additional readers for transparent retries of
// POSTs on stale keep-alive connections — all of them share the one
// buffer, and whichever finishes last recycles it.
type pooledPayload struct {
	buf  *bytes.Buffer
	refs atomic.Int32
}

func (p *pooledPayload) release() {
	if p.refs.Add(-1) == 0 {
		putEncodeBuf(p.buf)
	}
}

// newReader mints one counted reader over the payload bytes.
func (p *pooledPayload) newReader() io.ReadCloser {
	p.refs.Add(1)
	return &payloadReader{Reader: bytes.NewReader(p.buf.Bytes()), payload: p}
}

type payloadReader struct {
	*bytes.Reader
	payload *pooledPayload
	once    sync.Once
}

func (r *payloadReader) Close() error {
	r.once.Do(func() { r.payload.release() })
	return nil
}

// post sends a JSON request and decodes the JSON response. The request
// body is marshaled into a pooled buffer that is recycled once the
// transport releases it — on the front-end's proxy hop this runs once
// per offloaded request.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	buf := getEncodeBuf()
	payload := &pooledPayload{buf: buf}
	payload.refs.Store(1) // post's own reference, released on return
	defer payload.release()
	if err := json.NewEncoder(buf).Encode(in); err != nil {
		return fmt.Errorf("rpc: marshal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("rpc: build request: %w", err)
	}
	// Replace the plain reader with counted ones: the transport closes
	// every body it is handed (initial and GetBody replays alike), so
	// the buffer returns to the pool exactly once, after its last use.
	// ContentLength was already set from the reader above.
	req.Body = payload.newReader()
	req.GetBody = func() (io.ReadCloser, error) { return payload.newReader(), nil }
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("rpc: %s: %w", path, err)
	}
	defer func() {
		// Draining the body lets the transport reuse the connection.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("rpc: %s: %w", path,
			&StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))})
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out); err != nil {
		return fmt.Errorf("rpc: decode response: %w", err)
	}
	return nil
}

// Offload sends an offloading request to a front-end.
func (c *Client) Offload(ctx context.Context, req OffloadRequest) (OffloadResponse, error) {
	if err := req.Validate(); err != nil {
		return OffloadResponse{}, err
	}
	var resp OffloadResponse
	if err := c.call(ctx, PathOffload, req, &resp); err != nil {
		return OffloadResponse{}, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("rpc: remote: %s", resp.Error)
	}
	return resp, nil
}

// Execute sends a state directly to a surrogate.
func (c *Client) Execute(ctx context.Context, req ExecuteRequest) (ExecuteResponse, error) {
	var resp ExecuteResponse
	if err := c.call(ctx, PathExecute, req, &resp); err != nil {
		return ExecuteResponse{}, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("rpc: remote: %s", resp.Error)
	}
	return resp, nil
}

// Health checks a server's liveness endpoint. The configured Timeout
// applies; retries and hedges do not — health probing layers its own
// failure accounting (internal/health), so a probe must report exactly
// one attempt's truth.
func (c *Client) Health(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+PathHealth, nil)
	if err != nil {
		return fmt.Errorf("rpc: build health request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("rpc: health: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("rpc: health: status %d", resp.StatusCode)
	}
	return nil
}
