// Package rpc defines the offloading wire protocol between mobile
// clients, the SDN-accelerator front-end, and surrogate back-ends: JSON
// over HTTP, carrying the serialized application state of the homogeneous
// offloading model (Fig 1a) plus the timing breakdown of Fig 7a
// (T1 mobile↔front-end, T2 front-end↔back-end, Tcloud execution).
package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accelcloud/internal/wire"
)

// Paths of the HTTP endpoints.
const (
	// PathOffload is the front-end entry point for mobile clients.
	PathOffload = "/offload"
	// PathOffloadBatch executes a chain of offload calls in one round
	// trip (the JSON compat form of a binary batch frame).
	PathOffloadBatch = "/offload/batch"
	// PathExecute is the surrogate's execution endpoint.
	PathExecute = "/execute"
	// PathExecuteBatch executes a batch of homogeneous states in one
	// round trip — the surrogate-side hop the serving layer's dynamic
	// batcher dispatches through.
	PathExecuteBatch = "/execute/batch"
	// PathHealth reports liveness.
	PathHealth = "/healthz"
	// PathStats reports counters.
	PathStats = "/stats"
)

// MsgQueueFull is the wire-visible marker of admission-queue
// backpressure. serve.ErrQueueFull embeds it, the front-end's 503
// body carries it, and IsQueueFull recognizes it client-side so the
// retry budget can re-route immediately instead of backing off as if
// the backend had crashed.
const MsgQueueFull = "admission queue full"

// ErrQueueFull is the in-process sentinel behind the marker:
// serve.ErrQueueFull wraps it, so IsQueueFull classifies local
// rejections with errors.Is instead of free-text matching.
var ErrQueueFull = errors.New(MsgQueueFull)

// BinaryScheme prefixes a BaseURL that selects the binary framed
// transport ("bin://host:port") instead of HTTP/JSON. Everything else
// about the Client — Timeout, Retry, Hedge, the resilience counters —
// composes identically over both transports.
const BinaryScheme = "bin://"

// maxBodyBytes bounds request bodies (application states are small; the
// homogeneous model ships method parameters, not bulk data).
const maxBodyBytes = 8 << 20

// The protocol DTOs live in internal/wire so the binary framing and
// the JSON compat mode share one set of structs; the historical rpc
// names remain as aliases.
type (
	// OffloadRequest is a mobile client's request to the front-end.
	OffloadRequest = wire.OffloadRequest
	// OffloadResponse is the front-end's reply.
	OffloadResponse = wire.OffloadResponse
	// Timings is the Fig 7a component breakdown, in milliseconds.
	Timings = wire.Timings
	// ExecuteRequest is the front-end → surrogate call.
	ExecuteRequest = wire.ExecuteRequest
	// ExecuteResponse is the surrogate's reply.
	ExecuteResponse = wire.ExecuteResponse
	// BatchRequest is a chain of offload calls executed in one round trip.
	BatchRequest = wire.BatchRequest
	// BatchResponse answers a BatchRequest, one result per call.
	BatchResponse = wire.BatchResponse
	// BatchResult is one call's outcome (HTTP-equivalent code + response).
	BatchResult = wire.BatchResult
	// ExecuteBatchRequest is a batch of homogeneous surrogate calls.
	ExecuteBatchRequest = wire.ExecuteBatchRequest
	// ExecuteBatchResponse answers an ExecuteBatchRequest in call order.
	ExecuteBatchResponse = wire.ExecuteBatchResponse
)

// encodeBufPool recycles encode buffers across requests. The front-end
// marshals twice per proxied request (the surrogate hop and the client
// response); at load-generator concurrency the per-call allocations
// were a measurable share of the routing layer's GC pressure.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBufBytes caps what is returned to the pool so one huge
// application state doesn't pin its buffer forever.
const maxPooledBufBytes = 1 << 20

// Pool accounting: every Get must eventually be matched by a Put (or a
// deliberate over-cap Discard), error paths included — a buffer that
// misses its return leaks under sustained 5xx bursts, where every
// request takes an error path. The counters make the invariant
// testable (see TestEncodeBufPoolBalanced); they are monotonic, so
// balance is gets == puts + discards at quiescence.
var (
	poolGets     atomic.Int64
	poolPuts     atomic.Int64
	poolDiscards atomic.Int64
)

// PoolCounters snapshots the encode-buffer pool accounting
// (gets, puts, discards) — the observability hook behind the
// buffer-leak regression test.
func PoolCounters() (gets, puts, discards int64) {
	return poolGets.Load(), poolPuts.Load(), poolDiscards.Load()
}

func getEncodeBuf() *bytes.Buffer {
	poolGets.Add(1)
	return encodeBufPool.Get().(*bytes.Buffer)
}

func putEncodeBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBufBytes {
		poolDiscards.Add(1)
		return
	}
	b.Reset()
	encodeBufPool.Put(b)
	poolPuts.Add(1)
}

// WriteJSON writes v with the given status code. The body is staged in
// a pooled buffer so the response carries a Content-Length and the
// encoder's scratch space is reused across requests.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	buf := getEncodeBuf()
	defer putEncodeBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Unencodable payloads are a programming error; the empty-body
		// status line is the only thing left to send.
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	// Write failures after the header is sent can only be logged by
	// the caller's middleware; the connection is already committed.
	_, _ = w.Write(buf.Bytes())
}

// ReadJSON decodes a bounded request body into v.
func ReadJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("rpc: read body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("rpc: decode body: %w", err)
	}
	return nil
}

// defaultHTTPClient is shared by every Client whose HTTPClient field is
// nil. A single pooled transport matters under load-generator
// concurrency: the previous per-call `&http.Client{}` allocation gave
// each request a fresh connection pool, so nothing was ever reused and
// every request paid a TCP handshake. Keep-alive limits are sized for
// hundreds of concurrent simulated users against a handful of hosts.
// The transport carries no overall timeout: per-request deadlines are
// context-propagated by Client (Timeout / DefaultTimeout), so a caller
// with a tighter deadline is never held to a transport-wide constant.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          1024,
		MaxIdleConnsPerHost:   256,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
	},
}

// Client calls an offloading HTTP endpoint. The zero configuration is
// a plain client with the default deadline; Timeout, Retry, and Hedge
// opt into the resilience ladder (deadline → retry budget → hedged
// second request) the chaos scenarios exercise.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the underlying transport; nil selects the shared
	// pooled client.
	HTTPClient *http.Client
	// Timeout bounds each call end to end — retries and hedges
	// included — as a context deadline (0 selects DefaultTimeout). A
	// caller context with an earlier deadline still wins.
	Timeout time.Duration
	// Retry, when non-nil, re-sends failed attempts under a bounded
	// budget with exponential backoff and seeded jitter.
	Retry *RetryPolicy
	// Hedge, when non-nil, races a delayed second request against a
	// slow primary.
	Hedge *HedgePolicy

	retries   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64

	// binOnce/bin lazily build the persistent multiplexed connection
	// behind a bin:// BaseURL; binErr remembers an unusable address.
	binOnce sync.Once
	bin     *wire.Client
	binErr  error
}

// ClientOption configures a Client at construction. Options replace
// the historical post-hoc field pokes (c.Timeout = ...), so a built
// client is fully configured before its first call.
type ClientOption func(*Client)

// WithTimeout bounds each call end to end — retries and hedges
// included (0 keeps DefaultTimeout).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.Timeout = d }
}

// WithRetry installs a bounded retry budget.
func WithRetry(p *RetryPolicy) ClientOption {
	return func(c *Client) { c.Retry = p }
}

// WithHedge installs a hedged-request policy.
func WithHedge(p *HedgePolicy) ClientOption {
	return func(c *Client) { c.Hedge = p }
}

// WithHTTPClient overrides the shared pooled transport.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.HTTPClient = hc }
}

// NewClient builds a client on the shared pooled transport, applying
// options in order.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{BaseURL: baseURL}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// timeout reports the effective per-call deadline.
func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// Stats snapshots the resilience counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Retries:   c.retries.Load(),
		Hedges:    c.hedges.Load(),
		HedgeWins: c.hedgeWins.Load(),
	}
}

// pooledPayload is a marshaled request body backed by a pooled encode
// buffer, released to the pool only when its last reader is closed.
// Reference counting matters because the transport may read (and will
// close) a request body in a separate goroutine even after Do returns,
// and GetBody can mint additional readers for transparent retries of
// POSTs on stale keep-alive connections — all of them share the one
// buffer, and whichever finishes last recycles it.
type pooledPayload struct {
	buf  *bytes.Buffer
	refs atomic.Int32
}

func (p *pooledPayload) release() {
	if p.refs.Add(-1) == 0 {
		putEncodeBuf(p.buf)
	}
}

// newReader mints one counted reader over the payload bytes.
func (p *pooledPayload) newReader() io.ReadCloser {
	p.refs.Add(1)
	return &payloadReader{Reader: bytes.NewReader(p.buf.Bytes()), payload: p}
}

type payloadReader struct {
	*bytes.Reader
	payload *pooledPayload
	once    sync.Once
}

func (r *payloadReader) Close() error {
	r.once.Do(func() { r.payload.release() })
	return nil
}

// post sends one request over the configured transport. A bin://
// BaseURL routes through the binary framed protocol (binary.go);
// otherwise the request is marshaled as JSON into a pooled buffer that
// is recycled once the HTTP transport releases it — on the front-end's
// proxy hop this runs once per offloaded request.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	if c.binary() {
		return c.binPost(ctx, path, in, out)
	}
	return c.postJSON(ctx, path, in, out)
}

// binary reports whether the client speaks the framed protocol.
func (c *Client) binary() bool { return strings.HasPrefix(c.BaseURL, BinaryScheme) }

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	buf := getEncodeBuf()
	payload := &pooledPayload{buf: buf}
	payload.refs.Store(1) // post's own reference, released on return
	defer payload.release()
	if err := json.NewEncoder(buf).Encode(in); err != nil {
		return fmt.Errorf("rpc: marshal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("rpc: build request: %w", err)
	}
	// Replace the plain reader with counted ones: the transport closes
	// every body it is handed (initial and GetBody replays alike), so
	// the buffer returns to the pool exactly once, after its last use.
	// ContentLength was already set from the reader above.
	req.Body = payload.newReader()
	req.GetBody = func() (io.ReadCloser, error) { return payload.newReader(), nil }
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("rpc: %s: %w", path, err)
	}
	defer func() {
		// Draining the body lets the transport reuse the connection.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("rpc: %s: %w", path,
			&StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(body))})
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out); err != nil {
		return fmt.Errorf("rpc: decode response: %w", err)
	}
	return nil
}

// Offload sends an offloading request to a front-end. Under a retry or
// hedge policy the request is stamped with an idempotency key (unless
// the caller set one), so a re-sent or raced duplicate is served from
// the front-end's idempotency cache instead of executing the task
// twice.
func (c *Client) Offload(ctx context.Context, req OffloadRequest) (OffloadResponse, error) {
	if err := req.Validate(); err != nil {
		return OffloadResponse{}, err
	}
	c.stampIdemKey(&req)
	var resp OffloadResponse
	if err := c.call(ctx, PathOffload, req, &resp); err != nil {
		return OffloadResponse{}, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("rpc: remote: %s", resp.Error)
	}
	return resp, nil
}

// OffloadBatch executes a chain of offload calls in one round trip
// (one binary batch frame, or one JSON POST in compat mode). Results
// arrive in call order, each carrying the HTTP-equivalent status the
// call would have received alone; the returned error covers
// whole-batch failures only. Idempotency keys are stamped per call
// under a retry or hedge policy — a hedged batch must never
// double-execute side-effecting tasks.
func (c *Client) OffloadBatch(ctx context.Context, calls []OffloadRequest) ([]BatchResult, error) {
	if len(calls) == 0 {
		return nil, nil
	}
	if len(calls) > wire.MaxBatchCalls {
		return nil, fmt.Errorf("rpc: batch of %d calls exceeds cap %d", len(calls), wire.MaxBatchCalls)
	}
	batch := BatchRequest{Calls: make([]OffloadRequest, len(calls))}
	copy(batch.Calls, calls)
	for i := range batch.Calls {
		if err := batch.Calls[i].Validate(); err != nil {
			return nil, fmt.Errorf("rpc: batch call %d: %w", i, err)
		}
		c.stampIdemKey(&batch.Calls[i])
	}
	var resp BatchResponse
	if err := c.call(ctx, PathOffloadBatch, batch, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(calls) {
		return nil, fmt.Errorf("rpc: batch of %d calls answered with %d results", len(calls), len(resp.Results))
	}
	return resp.Results, nil
}

// idemSeq disambiguates keys within one process; the random prefix
// keeps keys from colliding across processes.
var (
	idemPrefix = rand.Uint64()
	idemSeq    atomic.Uint64
)

// stampIdemKey assigns an idempotency key when a retry or hedge policy
// could re-send the call. Plain clients stay key-free so the
// front-end's dedup cache sees no traffic from them.
func (c *Client) stampIdemKey(req *OffloadRequest) {
	if req.IdemKey != "" || (c.Retry == nil && c.Hedge == nil) {
		return
	}
	req.IdemKey = fmt.Sprintf("%x-%x", idemPrefix, idemSeq.Add(1))
}

// Execute sends a state directly to a surrogate.
func (c *Client) Execute(ctx context.Context, req ExecuteRequest) (ExecuteResponse, error) {
	var resp ExecuteResponse
	if err := c.call(ctx, PathExecute, req, &resp); err != nil {
		return ExecuteResponse{}, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("rpc: remote: %s", resp.Error)
	}
	return resp, nil
}

// ExecuteBatch sends a batch of states to a surrogate in one round
// trip. Results arrive in call order; per-call failures travel inside
// each result's Error field, so the returned error is transport-level
// only. Over the binary transport the calls fan out concurrently on
// the multiplexed connection — same amortization, no extra sockets.
func (c *Client) ExecuteBatch(ctx context.Context, reqs []ExecuteRequest) ([]ExecuteResponse, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if len(reqs) > wire.MaxBatchCalls {
		return nil, fmt.Errorf("rpc: batch of %d calls exceeds cap %d", len(reqs), wire.MaxBatchCalls)
	}
	if c.binary() {
		resps := make([]ExecuteResponse, len(reqs))
		var wg sync.WaitGroup
		wg.Add(len(reqs))
		for i := range reqs {
			go func(i int) {
				defer wg.Done()
				resp, err := c.Execute(ctx, reqs[i])
				if err != nil && resp.Error == "" {
					resp.Error = err.Error()
				}
				resps[i] = resp
			}(i)
		}
		wg.Wait()
		return resps, nil
	}
	var out ExecuteBatchResponse
	if err := c.call(ctx, PathExecuteBatch, ExecuteBatchRequest{Calls: reqs}, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(reqs) {
		return nil, fmt.Errorf("rpc: batch returned %d results for %d calls", len(out.Results), len(reqs))
	}
	return out.Results, nil
}

// Health checks a server's liveness endpoint. The configured Timeout
// applies; retries and hedges do not — health probing layers its own
// failure accounting (internal/health), so a probe must report exactly
// one attempt's truth.
func (c *Client) Health(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	if c.binary() {
		// The binary liveness probe is a ping frame on the persistent
		// connection (re-dialed if broken) — one attempt's truth, like
		// the HTTP probe.
		bc, err := c.wireClient()
		if err != nil {
			return fmt.Errorf("rpc: health: %w", err)
		}
		if err := bc.Ping(ctx); err != nil {
			return fmt.Errorf("rpc: health: %w", err)
		}
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+PathHealth, nil)
	if err != nil {
		return fmt.Errorf("rpc: build health request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("rpc: health: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("rpc: health: status %d", resp.StatusCode)
	}
	return nil
}
