// Package rpc defines the offloading wire protocol between mobile
// clients, the SDN-accelerator front-end, and surrogate back-ends: JSON
// over HTTP, carrying the serialized application state of the homogeneous
// offloading model (Fig 1a) plus the timing breakdown of Fig 7a
// (T1 mobile↔front-end, T2 front-end↔back-end, Tcloud execution).
package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"time"

	"accelcloud/internal/tasks"
)

// Paths of the HTTP endpoints.
const (
	// PathOffload is the front-end entry point for mobile clients.
	PathOffload = "/offload"
	// PathExecute is the surrogate's execution endpoint.
	PathExecute = "/execute"
	// PathHealth reports liveness.
	PathHealth = "/healthz"
	// PathStats reports counters.
	PathStats = "/stats"
)

// maxBodyBytes bounds request bodies (application states are small; the
// homogeneous model ships method parameters, not bulk data).
const maxBodyBytes = 8 << 20

// OffloadRequest is a mobile client's request to the front-end.
type OffloadRequest struct {
	// UserID identifies the device.
	UserID int `json:"userId"`
	// Group is the acceleration group the device currently requests.
	Group int `json:"group"`
	// BatteryLevel is the device battery in [0, 1] (logged per §IV-A).
	BatteryLevel float64 `json:"batteryLevel"`
	// State is the serialized application state to execute.
	State tasks.State `json:"state"`
}

// Validate checks the request.
func (r OffloadRequest) Validate() error {
	if r.UserID < 0 {
		return fmt.Errorf("rpc: negative user id %d", r.UserID)
	}
	if r.Group < 0 {
		return fmt.Errorf("rpc: negative group %d", r.Group)
	}
	if math.IsNaN(r.BatteryLevel) || r.BatteryLevel < 0 || r.BatteryLevel > 1 {
		return fmt.Errorf("rpc: battery %v outside [0,1]", r.BatteryLevel)
	}
	if r.State.Task == "" {
		return errors.New("rpc: state without task name")
	}
	return nil
}

// Timings is the Fig 7a component breakdown, in milliseconds.
type Timings struct {
	// RoutingMs is the SDN-accelerator's processing overhead (≈150 ms
	// in the paper, Fig 8a).
	RoutingMs float64 `json:"routingMs"`
	// BackendMs is T2: front-end ↔ back-end communication.
	BackendMs float64 `json:"backendMs"`
	// CloudMs is Tcloud: code execution on the surrogate.
	CloudMs float64 `json:"cloudMs"`
}

// OffloadResponse is the front-end's reply.
type OffloadResponse struct {
	// Result is the execution outcome.
	Result tasks.Result `json:"result"`
	// Server identifies the surrogate that executed the request.
	Server string `json:"server"`
	// Group is the acceleration group that served the request.
	Group int `json:"group"`
	// Timings is the component breakdown.
	Timings Timings `json:"timings"`
	// Error carries a failure message ("" on success).
	Error string `json:"error,omitempty"`
}

// ExecuteRequest is the front-end → surrogate call.
type ExecuteRequest struct {
	State tasks.State `json:"state"`
}

// ExecuteResponse is the surrogate's reply.
type ExecuteResponse struct {
	Result tasks.Result `json:"result"`
	// CloudMs is the measured execution time on the surrogate.
	CloudMs float64 `json:"cloudMs"`
	Server  string  `json:"server"`
	Error   string  `json:"error,omitempty"`
}

// WriteJSON writes v with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding failures after the header is sent can only be logged by
	// the caller's middleware; the connection is already committed.
	_ = json.NewEncoder(w).Encode(v)
}

// ReadJSON decodes a bounded request body into v.
func ReadJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("rpc: read body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("rpc: decode body: %w", err)
	}
	return nil
}

// defaultHTTPClient is shared by every Client whose HTTPClient field is
// nil. A single pooled transport matters under load-generator
// concurrency: the previous per-call `&http.Client{}` allocation gave
// each request a fresh connection pool, so nothing was ever reused and
// every request paid a TCP handshake. Keep-alive limits are sized for
// hundreds of concurrent simulated users against a handful of hosts.
var defaultHTTPClient = &http.Client{
	Timeout: 30 * time.Second,
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          1024,
		MaxIdleConnsPerHost:   256,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
	},
}

// Client calls an offloading HTTP endpoint.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the underlying transport; nil selects the shared
	// pooled client with a 30 s timeout.
	HTTPClient *http.Client
}

// NewClient builds a client on the shared pooled transport.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// post sends a JSON request and decodes the JSON response.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("rpc: marshal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("rpc: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("rpc: %s: %w", path, err)
	}
	defer func() {
		// Draining the body lets the transport reuse the connection.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("rpc: %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(body))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out); err != nil {
		return fmt.Errorf("rpc: decode response: %w", err)
	}
	return nil
}

// Offload sends an offloading request to a front-end.
func (c *Client) Offload(ctx context.Context, req OffloadRequest) (OffloadResponse, error) {
	if err := req.Validate(); err != nil {
		return OffloadResponse{}, err
	}
	var resp OffloadResponse
	if err := c.post(ctx, PathOffload, req, &resp); err != nil {
		return OffloadResponse{}, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("rpc: remote: %s", resp.Error)
	}
	return resp, nil
}

// Execute sends a state directly to a surrogate.
func (c *Client) Execute(ctx context.Context, req ExecuteRequest) (ExecuteResponse, error) {
	var resp ExecuteResponse
	if err := c.post(ctx, PathExecute, req, &resp); err != nil {
		return ExecuteResponse{}, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("rpc: remote: %s", resp.Error)
	}
	return resp, nil
}

// Health checks a server's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+PathHealth, nil)
	if err != nil {
		return fmt.Errorf("rpc: build health request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("rpc: health: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("rpc: health: status %d", resp.StatusCode)
	}
	return nil
}
