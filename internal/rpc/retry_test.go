package rpc

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyExecute serves /execute failing the first n requests with the
// given status, then succeeding.
func flakyExecute(t *testing.T, failures int64, code int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= failures {
			WriteJSON(w, code, ExecuteResponse{Error: "injected"})
			return
		}
		WriteJSON(w, http.StatusOK, ExecuteResponse{Server: "ok"})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestRetryBudgetRecoversFrom5xx(t *testing.T) {
	srv, calls := flakyExecute(t, 2, http.StatusBadGateway)
	c := NewClient(srv.URL)
	c.Retry = NewRetryPolicy(3, time.Millisecond, 10*time.Millisecond, 1)
	resp, err := c.Execute(context.Background(), ExecuteRequest{})
	if err != nil {
		t.Fatalf("execute with retries: %v", err)
	}
	if resp.Server != "ok" {
		t.Fatalf("server = %q", resp.Server)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if st := c.Stats(); st.Retries != 2 {
		t.Fatalf("retry counter = %d, want 2", st.Retries)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	srv, calls := flakyExecute(t, 100, http.StatusServiceUnavailable)
	c := NewClient(srv.URL)
	c.Retry = NewRetryPolicy(3, time.Millisecond, 10*time.Millisecond, 1)
	if _, err := c.Execute(context.Background(), ExecuteRequest{}); err == nil {
		t.Fatal("want error after budget exhaustion")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want exactly the budget of 3", got)
	}
}

func TestClientErrorsAreNotRetried(t *testing.T) {
	srv, calls := flakyExecute(t, 100, http.StatusBadRequest)
	c := NewClient(srv.URL)
	c.Retry = NewRetryPolicy(5, time.Millisecond, 10*time.Millisecond, 1)
	_, err := c.Execute(context.Background(), ExecuteRequest{})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("want StatusError 400, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (4xx must not burn the budget)", got)
	}
}

func TestRetryRespectsContext(t *testing.T) {
	srv, _ := flakyExecute(t, 100, http.StatusBadGateway)
	c := NewClient(srv.URL)
	c.Retry = NewRetryPolicy(1000, 50*time.Millisecond, 50*time.Millisecond, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Execute(ctx, ExecuteRequest{}); err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop outlived its context by %v", elapsed)
	}
}

func TestTimeoutBoundsHungBackend(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	// LIFO: unblock the handler before srv.Close waits on it.
	defer close(block)
	c := NewClient(srv.URL)
	c.Timeout = 50 * time.Millisecond
	start := time.Now()
	_, err := c.Execute(context.Background(), ExecuteRequest{})
	if err == nil {
		t.Fatal("hung backend must time out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestHedgeWinsAgainstHungPrimary(t *testing.T) {
	// The first request hangs; every later one succeeds immediately.
	// With hedging, the call resolves via the second lane.
	var calls atomic.Int64
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-block
			return
		}
		WriteJSON(w, http.StatusOK, ExecuteResponse{Server: "hedged"})
	}))
	defer srv.Close()
	// LIFO: unblock the hung handler before srv.Close waits on it.
	defer close(block)
	c := NewClient(srv.URL)
	c.Hedge = &HedgePolicy{Delay: 20 * time.Millisecond}
	c.Timeout = 5 * time.Second
	resp, err := c.Execute(context.Background(), ExecuteRequest{})
	if err != nil {
		t.Fatalf("hedged execute: %v", err)
	}
	if resp.Server != "hedged" {
		t.Fatalf("server = %q, want the hedge lane's response", resp.Server)
	}
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want 1 hedge / 1 win", st)
	}
}

func TestHedgeNotLaunchedWhenPrimaryIsFast(t *testing.T) {
	srv, calls := flakyExecute(t, 0, http.StatusOK)
	c := NewClient(srv.URL)
	c.Hedge = &HedgePolicy{Delay: 5 * time.Second}
	if _, err := c.Execute(context.Background(), ExecuteRequest{}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (no hedge for a fast primary)", got)
	}
	if st := c.Stats(); st.Hedges != 0 {
		t.Fatalf("hedges = %d, want 0", st.Hedges)
	}
}

func TestBackoffIsCappedAndJittered(t *testing.T) {
	p := NewRetryPolicy(10, 10*time.Millisecond, 80*time.Millisecond, 42)
	for n := 0; n < 20; n++ {
		d := p.backoff(n)
		if d < 5*time.Millisecond || d > 80*time.Millisecond {
			t.Fatalf("backoff(%d) = %v outside [base/2, cap]", n, d)
		}
	}
	// Same seed, same draw sequence: the jitter is reproducible.
	a := NewRetryPolicy(10, 10*time.Millisecond, 80*time.Millisecond, 7)
	b := NewRetryPolicy(10, 10*time.Millisecond, 80*time.Millisecond, 7)
	for n := 0; n < 8; n++ {
		if da, db := a.backoff(n), b.backoff(n); da != db {
			t.Fatalf("seeded backoff diverged at %d: %v vs %v", n, da, db)
		}
	}
}
