package rpc

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"accelcloud/internal/tasks"
)

// poolBalanced polls the encode-buffer pool counters until every Get
// taken since the baseline has been matched by a Put or Discard. The
// wait matters: the HTTP transport may close (and thereby release) a
// request body on its own goroutine after Do returns.
func poolBalanced(t *testing.T, baseGets, basePuts, baseDiscards int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		gets, puts, discards := PoolCounters()
		dGets, dPuts, dDiscards := gets-baseGets, puts-basePuts, discards-baseDiscards
		if dGets == dPuts+dDiscards {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("encode buffer pool leaked: %d gets vs %d puts + %d discards since baseline",
				dGets, dPuts, dDiscards)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEncodeBufPoolBalanced is the buffer-leak regression test: every
// pooled encode buffer taken on the client post path must return to
// the pool, error paths included — a sustained 5xx burst or a dead
// peer must not bleed buffers.
func TestEncodeBufPoolBalanced(t *testing.T) {
	okSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, OffloadResponse{Server: "s"})
	}))
	defer okSrv.Close()
	errSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusInternalServerError, OffloadResponse{Error: "boom"})
	}))
	defer errSrv.Close()
	// A server that never answers, for the timeout path. The handler
	// also waits on a test-scoped release channel: a client disconnect
	// is not guaranteed to cancel the request context before teardown,
	// and hungSrv.Close blocks until every handler returns.
	hungDone := make(chan struct{})
	hungSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-hungDone:
		}
	}))
	defer hungSrv.Close()
	defer close(hungDone)

	baseGets, basePuts, baseDiscards := PoolCounters()
	req := OffloadRequest{UserID: 1, Group: 1, BatteryLevel: 0.5,
		State: tasks.State{Task: "sieve", Size: 10}}

	ctx := context.Background()
	for i := 0; i < 20; i++ {
		// Success path.
		if _, err := NewClient(okSrv.URL).Offload(ctx, req); err != nil {
			t.Fatalf("ok server errored: %v", err)
		}
		// 5xx path, with retries so the same buffer is replayed.
		c := NewClient(errSrv.URL)
		c.Retry = NewRetryPolicy(3, time.Millisecond, 5*time.Millisecond, int64(i))
		if _, err := c.Offload(ctx, req); err == nil {
			t.Fatal("error server succeeded")
		}
		// Connection-refused path.
		if _, err := NewClient("http://127.0.0.1:1").Offload(ctx, req); err == nil {
			t.Fatal("dead address succeeded")
		}
		// Timeout path: the transport is still reading the body when the
		// context fires.
		tc := NewClient(hungSrv.URL)
		tc.Timeout = 20 * time.Millisecond
		if _, err := tc.Offload(ctx, req); err == nil {
			t.Fatal("hung server succeeded")
		}
	}
	poolBalanced(t, baseGets, basePuts, baseDiscards)
}

// TestEncodeBufPoolDiscardsOversized proves a huge one-off state
// cannot pin its buffer in the pool forever: over-cap buffers are
// discarded (counted), not recycled.
func TestEncodeBufPoolDiscardsOversized(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, OffloadResponse{})
	}))
	defer srv.Close()
	_, _, baseDiscards := PoolCounters()
	// State.Data is json.RawMessage on the JSON transport, so the
	// over-cap payload must itself be valid JSON.
	big := make([]byte, maxPooledBufBytes+2)
	for i := range big {
		big[i] = 'a'
	}
	big[0], big[len(big)-1] = '"', '"'
	req := OffloadRequest{UserID: 1, Group: 1, BatteryLevel: 0.5,
		State: tasks.State{Task: "blob", Size: 1, Data: big}}
	if _, err := NewClient(srv.URL).Offload(context.Background(), req); err != nil {
		t.Fatalf("offload: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, discards := PoolCounters(); discards > baseDiscards {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("over-cap buffer was not discarded")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBinaryTransportBypassesEncodePool sanity-checks that bin://
// clients do not touch the JSON encode pool on the request path (they
// have their own frame scratch), so pool accounting stays attributable
// to the JSON mode.
func TestBinaryTransportBypassesEncodePool(t *testing.T) {
	c := NewClient(BinaryScheme + "127.0.0.1:1")
	if !c.binary() {
		t.Fatal("bin:// URL not detected as binary")
	}
	baseGets, _, _ := PoolCounters()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _ = c.Offload(ctx, OffloadRequest{UserID: 1, Group: 1, BatteryLevel: 0.5,
		State: tasks.State{Task: "sieve", Size: 10}})
	if gets, _, _ := PoolCounters(); gets != baseGets {
		t.Fatalf("binary post took %d encode buffers", gets-baseGets)
	}
}

// TestBadBinaryAddressRejected locks in the bin:// address validation.
func TestBadBinaryAddressRejected(t *testing.T) {
	for _, url := range []string{BinaryScheme, BinaryScheme + "host:1/path"} {
		c := NewClient(url)
		if _, err := c.wireClient(); err == nil || !strings.Contains(err.Error(), "malformed binary address") {
			t.Errorf("%q: want malformed-address error, got %v", url, err)
		}
	}
}
