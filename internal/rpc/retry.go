package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"time"
)

// DefaultTimeout is the per-request deadline a Client applies when its
// Timeout field is zero. It replaces the historical transport-level
// http.Client.Timeout: deadlines now travel through context, so callers
// holding a tighter deadline always win and callers holding none are
// still protected.
const DefaultTimeout = 30 * time.Second

// StatusError is a non-200 HTTP response, preserved as a typed error so
// the retry budget can distinguish server faults (5xx, retryable — the
// backend may be crashed or ejected mid-flight) from client mistakes
// (4xx, never retried).
type StatusError struct {
	Code int
	Body string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("status %d: %s", e.Code, e.Body)
}

// RetryPolicy is a bounded retry budget with exponential backoff and
// seeded jitter. The zero value retries nothing; NewRetryPolicy builds
// a jittered policy whose backoff draws are reproducible for a seed.
// A RetryPolicy is safe for concurrent use by many requests.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first
	// (values < 2 disable retries).
	MaxAttempts int
	// BaseBackoff is the pre-jitter wait before the first retry; it
	// doubles per attempt (0 selects 25ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 selects 1s).
	MaxBackoff time.Duration

	// mu guards rnd: backoff draws are cheap and happen only on the
	// (already slow) retry path, never on first-attempt success.
	mu  sync.Mutex
	rnd *rand.Rand
}

// NewRetryPolicy builds a retry budget whose jitter stream is seeded —
// chaos runs derive the seed from sim.RNG substreams so backoff
// sequences are reproducible run to run.
func NewRetryPolicy(maxAttempts int, base, max time.Duration, seed int64) *RetryPolicy {
	//nolint:gosec // deterministic jitter, not cryptography.
	return &RetryPolicy{
		MaxAttempts: maxAttempts,
		BaseBackoff: base,
		MaxBackoff:  max,
		rnd:         rand.New(rand.NewSource(seed)),
	}
}

// backoff computes the jittered wait before retry number n (0-based):
// an exponentially grown, capped base, spread over [1/2, 1) of itself
// so concurrent retriers decorrelate instead of thundering back in
// lockstep.
func (p *RetryPolicy) backoff(n int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	cap := p.MaxBackoff
	if cap <= 0 {
		cap = time.Second
	}
	d := base << uint(n)
	if d <= 0 || d > cap { // <= 0 catches shift overflow
		d = cap
	}
	if p.rnd == nil {
		return d
	}
	p.mu.Lock()
	f := p.rnd.Float64()
	p.mu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// HedgePolicy launches a second identical request when the first has
// not resolved within Delay, racing the two and keeping whichever
// finishes first — the tail-tolerance half of the retry budget: retries
// cover failures, hedges cover stragglers (hung or latency-spiked
// backends that have not failed yet).
type HedgePolicy struct {
	// Delay is how long the primary request runs alone. Values <= 0
	// disable hedging.
	Delay time.Duration
}

// ClientStats are the client's resilience counters.
type ClientStats struct {
	// Retries counts re-sent attempts (excluding each call's first).
	Retries int64
	// Hedges counts hedged second requests actually launched.
	Hedges int64
	// HedgeWins counts hedges that resolved before their primary.
	HedgeWins int64
}

// retryable reports whether an attempt error is worth another attempt:
// transport failures and 5xx responses are (the backend may be dead and
// the next pick routed elsewhere); 4xx responses and exhausted contexts
// are not.
func retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// IsQueueFull reports whether an error is admission-queue
// backpressure: a 503 whose body carries the MsgQueueFull marker (the
// front-end's rendering of serve.ErrQueueFull), or an in-process
// error wrapping the ErrQueueFull sentinel. Queue-full rejections
// mean "this backend is busy, others may not be", so the retry path
// re-routes after a token wait instead of the full crash-backoff.
// Classification is structural (typed status + sentinel), never
// free-text over arbitrary error strings, so unrelated errors that
// happen to mention the marker cannot ride the fast-retry path.
func IsQueueFull(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusServiceUnavailable && strings.Contains(se.Body, MsgQueueFull)
	}
	return errors.Is(err, ErrQueueFull)
}

// IsUnavailable reports whether an error means the target front-end
// cannot serve the call at all right now: transport-level failures
// (connection refused or reset, dial and hop timeouts — the signature
// of a crashed or chaos-killed region) and 5xx responses. The geo
// failover path treats these as "this region is gone, try the next
// one in the preference order"; 4xx responses and a caller-cancelled
// context are the device's own problem and never re-route. Queue-full
// backpressure is also unavailable in this sense — IsQueueFull
// distinguishes spillover from failover when the caller cares which.
func IsUnavailable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	return true
}

// queueFullBackoff is the short wait before retrying a queue-full
// rejection: long enough to let a dispatcher drain one slot, short
// enough that the retry lands while the re-route window is open.
const queueFullBackoff = time.Millisecond

// attempts runs post under the client's retry budget. out is only
// written by a successful decode, so a failed attempt never leaves a
// half-decoded response behind.
func (c *Client) attempts(ctx context.Context, path string, in, out any) error {
	p := c.Retry
	budget := 1
	if p != nil && p.MaxAttempts > 1 {
		budget = p.MaxAttempts
	}
	var err error
	for attempt := 0; attempt < budget; attempt++ {
		if attempt > 0 {
			wait := p.backoff(attempt - 1)
			if IsQueueFull(err) {
				// Backpressure, not a crash: the next attempt re-picks
				// and lands on a non-saturated backend, so waiting the
				// full exponential backoff wastes the re-route window.
				wait = queueFullBackoff
			}
			select {
			case <-ctx.Done():
				return err
			case <-time.After(wait):
			}
			// Counted only once the backoff survives the context: a
			// call cancelled mid-wait never re-sent anything.
			c.retries.Add(1)
		}
		err = c.post(ctx, path, in, out)
		if err == nil {
			return nil
		}
		if !retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// call is the resilient entry point every client method funnels
// through: it bounds the whole call (retries and hedges included) with
// the configured deadline, then runs the retry budget — hedged with a
// delayed second lane when a HedgePolicy is set.
func (c *Client) call(ctx context.Context, path string, in, out any) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	if c.Hedge == nil || c.Hedge.Delay <= 0 {
		return c.attempts(ctx, path, in, out)
	}
	return c.hedged(ctx, path, in, out)
}

// hedged races a primary attempt chain against a second one launched
// after the hedge delay. Each lane decodes into its own value so the
// lanes never share out; the winner's value is copied into out.
func (c *Client) hedged(ctx context.Context, path string, in, out any) error {
	lctx, lcancel := context.WithCancel(ctx)
	defer lcancel()
	type lane struct {
		out   any
		err   error
		hedge bool
	}
	results := make(chan lane, 2)
	run := func(hedge bool) {
		o := reflect.New(reflect.TypeOf(out).Elem()).Interface()
		results <- lane{out: o, err: c.attempts(lctx, path, in, o), hedge: hedge}
	}
	go run(false)
	timer := time.NewTimer(c.Hedge.Delay)
	defer timer.Stop()

	launched, finished := 1, 0
	primaryResolved := false
	var firstErr error
	for {
		select {
		case <-timer.C:
			if launched == 1 {
				launched = 2
				c.hedges.Add(1)
				go run(true)
			}
		case l := <-results:
			finished++
			if !l.hedge {
				primaryResolved = true
			}
			if l.err == nil {
				// A win is the hedge beating a still-outstanding
				// primary — succeeding after the primary already failed
				// is retry-style recovery, not a tail-latency win.
				if l.hedge && !primaryResolved {
					c.hedgeWins.Add(1)
				}
				reflect.ValueOf(out).Elem().Set(reflect.ValueOf(l.out).Elem())
				// The losing lane is cancelled by the deferred lcancel
				// and drains into the buffered channel.
				return nil
			}
			if firstErr == nil {
				firstErr = l.err
			}
			if finished == launched {
				// Either every launched lane failed, or the primary
				// failed before the hedge delay fired — its retries
				// already consumed the budget, so a hedge would only
				// repeat the same failure.
				return firstErr
			}
		}
	}
}
