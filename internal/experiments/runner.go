package experiments

import (
	"fmt"
	"sync"
	"time"

	"accelcloud/internal/netsim"
	"accelcloud/internal/sim"
)

// Runner executes figure/table reproductions concurrently over a bounded
// worker pool. Experiments are independent simulations (the one shared
// input, the Fig 9 run that Fig 10's panels reuse, is computed once and
// memoized per Run call), and each experiment's own inner loops shard
// further via Scale.Workers — so a Run's artifacts are bit-identical at
// any worker count, including the serial Workers == 1.
type Runner struct {
	// Scale is the experiment fidelity profile.
	Scale Scale
	// Workers bounds concurrently-running experiments AND, unless the
	// Scale already pins one, each experiment's inner shard width.
	// <= 1 runs everything serially.
	Workers int
}

// Artifact is the renderable output of one experiment: its tables in
// figure order plus free-form annotation lines (e.g. the Fig 4 level
// classification).
type Artifact struct {
	Tables []Table
	Notes  []string
}

// Report is the outcome of one experiment in a Run.
type Report struct {
	Name     string
	Artifact Artifact
	// Elapsed is the experiment's wall-clock time (NOT part of the
	// deterministic output; use Artifact for comparisons).
	Elapsed time.Duration
	Err     error
}

// spec is one registry entry.
type spec struct {
	name string
	run  func() (Artifact, error)
}

// ExperimentNames lists every registered experiment in report order.
func ExperimentNames() []string {
	names := make([]string, 0, len(experimentOrder))
	return append(names, experimentOrder...)
}

var experimentOrder = []string{
	"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
	"ablations", "caas",
}

// buildSpecs assembles the per-run registry. The closure set shares one
// memoized Fig 9 run so fig9 and fig10 never duplicate the study (and,
// more importantly, always agree on it).
func buildSpecs(s Scale) map[string]spec {
	var (
		f9once sync.Once
		f9     Fig9Result
		f9err  error
	)
	fig9 := func() (*Fig9Result, error) {
		f9once.Do(func() { f9, f9err = Fig9(s) })
		if f9err != nil {
			return nil, f9err
		}
		return &f9, nil
	}
	specs := []spec{
		{"fig4", func() (Artifact, error) {
			r, err := Fig4(s)
			if err != nil {
				return Artifact{}, err
			}
			a := Artifact{Tables: []Table{r.Table()}}
			for _, l := range r.Grouping.Levels {
				a.Notes = append(a.Notes, fmt.Sprintf(
					"# level %d: %v (solo %.1f ms, capacity %d users)",
					l.Index, l.Types, l.SoloMs, l.Capacity))
			}
			return a, nil
		}},
		{"fig5", func() (Artifact, error) {
			r, err := Fig5(s)
			if err != nil {
				return Artifact{}, err
			}
			return Artifact{Tables: []Table{r.Table()}}, nil
		}},
		{"fig6", func() (Artifact, error) {
			r, err := Fig6(s)
			if err != nil {
				return Artifact{}, err
			}
			return Artifact{Tables: []Table{r.Table()}}, nil
		}},
		{"fig7", func() (Artifact, error) {
			r, err := Fig7(s)
			if err != nil {
				return Artifact{}, err
			}
			return Artifact{Tables: []Table{r.ComponentsTable(), r.SDTable()}}, nil
		}},
		{"fig8", func() (Artifact, error) {
			r, err := Fig8(s)
			if err != nil {
				return Artifact{}, err
			}
			return Artifact{Tables: []Table{r.RoutingTable(), r.SweepTable()}}, nil
		}},
		{"fig9", func() (Artifact, error) {
			r, err := fig9()
			if err != nil {
				return Artifact{}, err
			}
			return Artifact{Tables: []Table{
				r.SeriesTable(r.Stable, "b (stable user)"),
				r.SeriesTable(r.Promoted, "c (promoted user)"),
				r.GroupMeansTable(),
			}}, nil
		}},
		{"fig10", func() (Artifact, error) {
			f9r, err := fig9()
			if err != nil {
				return Artifact{}, err
			}
			r, err := Fig10(s, f9r)
			if err != nil {
				return Artifact{}, err
			}
			return Artifact{Tables: []Table{
				r.AccuracyTable(), r.HeatTable(25), r.PromotionTable(),
			}}, nil
		}},
		{"fig11", func() (Artifact, error) {
			r, err := Fig11(s)
			if err != nil {
				return Artifact{}, err
			}
			tables := []Table{r.SummaryTable()}
			for _, op := range []string{"alpha", "beta", "gamma"} {
				for _, tech := range []netsim.Tech{netsim.Tech3G, netsim.TechLTE} {
					tables = append(tables, r.HourlyTable(op, tech))
				}
			}
			return Artifact{Tables: tables}, nil
		}},
		{"ablations", func() (Artifact, error) {
			pol, err := AblationPromotionPolicies(s)
			if err != nil {
				return Artifact{}, err
			}
			pred, err := AblationPredictors(s)
			if err != nil {
				return Artifact{}, err
			}
			alloc, err := AblationAllocators(s)
			if err != nil {
				return Artifact{}, err
			}
			par, err := AblationParallelism(s)
			if err != nil {
				return Artifact{}, err
			}
			return Artifact{Tables: []Table{
				PoliciesTable(pol), PredictorsTable(pred),
				AllocatorsTable(alloc), ParallelismTable(par),
			}}, nil
		}},
		{"caas", func() (Artifact, error) {
			caas, err := CaaSPricing(4)
			if err != nil {
				return Artifact{}, err
			}
			return Artifact{Tables: []Table{CaaSTable(caas)}}, nil
		}},
	}
	byName := make(map[string]spec, len(specs))
	for _, sp := range specs {
		byName[sp.name] = sp
	}
	return byName
}

// Run executes the named experiments (all of them when names is empty)
// and returns one report per experiment in registry order, regardless of
// completion order. An unknown name fails up front; an experiment
// failure lands in its Report.Err and does not stop the others.
func (r Runner) Run(names ...string) ([]Report, error) {
	if len(names) == 0 {
		names = ExperimentNames()
	}
	selected0 := make([]string, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, want := range experimentOrder {
		for _, n := range names {
			if n == want && !seen[n] {
				seen[n] = true
				selected0 = append(selected0, want)
			}
		}
	}
	for _, n := range names {
		if !seen[n] {
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", n, ExperimentNames())
		}
	}
	scale := r.Scale
	if scale.Workers == 0 {
		// Split the worker budget between the experiment pool and the
		// inner shards so nesting does not multiply goroutines: with W
		// workers over E concurrent experiments, each experiment's inner
		// loops get W/min(W,E) (at least 1). Workers never affects
		// output, only scheduling, so any split is safe.
		concurrent := len(selected0)
		if r.Workers < concurrent {
			concurrent = r.Workers
		}
		if concurrent < 1 {
			concurrent = 1
		}
		scale.Workers = r.Workers / concurrent
		if scale.Workers < 1 {
			scale.Workers = 1
		}
	}
	byName := buildSpecs(scale)
	selected := make([]spec, 0, len(selected0))
	for _, n := range selected0 {
		selected = append(selected, byName[n])
	}
	reports := make([]Report, len(selected))
	sim.FanOut(len(selected), r.Workers, func(i int) {
		start := time.Now()
		art, err := selected[i].run()
		reports[i] = Report{
			Name:     selected[i].name,
			Artifact: art,
			Elapsed:  time.Since(start),
			Err:      err,
		}
	})
	return reports, nil
}

// FirstError returns the error of the first (registry-order) failed
// report, or nil.
func FirstError(reports []Report) error {
	for _, rep := range reports {
		if rep.Err != nil {
			return fmt.Errorf("%s: %w", rep.Name, rep.Err)
		}
	}
	return nil
}

// TimingTable renders the per-experiment wall-clock report of a Run.
func TimingTable(reports []Report, workers int) Table {
	if workers < 1 {
		workers = 1
	}
	t := Table{
		Title:  fmt.Sprintf("Runner timing (%d worker(s))", workers),
		Header: []string{"experiment", "elapsed", "status"},
	}
	var total time.Duration
	for _, rep := range reports {
		status := "ok"
		if rep.Err != nil {
			status = "error: " + rep.Err.Error()
		}
		t.Rows = append(t.Rows, []string{
			rep.Name, rep.Elapsed.Round(time.Millisecond).String(), status,
		})
		total += rep.Elapsed
	}
	// Sum of per-experiment wall-clock elapsed — NOT CPU time: under a
	// parallel run experiments time-share cores, and the memoized Fig 9
	// cost lands in whichever of fig9/fig10 reached it first.
	t.Rows = append(t.Rows, []string{"sum-elapsed", total.Round(time.Millisecond).String(), ""})
	return t
}
