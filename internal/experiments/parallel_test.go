package experiments

import "testing"

// The §VII-1 claim: a serial task's acceleration saturates at the
// single-core speed ratio (≈2× across the whole ladder), while the
// parallelized variant keeps scaling with cores.
func TestAblationParallelism(t *testing.T) {
	rows, err := AblationParallelism(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byType := map[string]ParallelismOutcome{}
	for _, r := range rows {
		byType[r.TypeName] = r
	}
	nano := byType["t2.nano"]
	big := byType["m4.10xlarge"]
	// On a 1-core box, parallelization cannot help.
	if nano.Speedup > 1.05 {
		t.Errorf("t2.nano speedup %.2f, want ≈1", nano.Speedup)
	}
	// On the 40-core box the 12-way parallel task runs ≈12× faster.
	if big.Speedup < 8 {
		t.Errorf("m4.10xlarge speedup %.2f, want ≈12", big.Speedup)
	}
	// The serial acceleration limit: serial latency improves only by the
	// single-core speed ratio (2.0/1.0) from nano to m4.10xlarge...
	serialGain := nano.SerialMs / big.SerialMs
	if serialGain > 2.5 {
		t.Errorf("serial gain %.2f exceeds the single-core speed ratio", serialGain)
	}
	// ...while the parallel task gains an order of magnitude more.
	parallelGain := nano.ParallelMs / big.ParallelMs
	if parallelGain < 5*serialGain {
		t.Errorf("parallel gain %.2f should dwarf serial gain %.2f", parallelGain, serialGain)
	}
	if len(ParallelismTable(rows).Rows) != 4 {
		t.Fatal("table wrong")
	}
}
