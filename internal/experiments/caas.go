package experiments

import (
	"fmt"

	"accelcloud/internal/cloud"
)

// CaaS pricing (§VII-4): the paper argues that acceleration levels open
// a monetization path — "a user can acquire from the cloud a service to
// improve the response time of a game instead of buying a new higher
// capability device". This experiment computes what each level costs the
// provider per served user, which bounds a viable subscription price.

// CaaSPrice is the unit economics of one acceleration level.
type CaaSPrice struct {
	Level          int
	TypeName       string
	PricePerHour   float64
	CapacityUsers  int
	UserHourUSD    float64
	UserMonthUSD   float64
	ActiveHrPerDay float64
}

// CaaSPricing derives per-user costs from the Fig 9 deployment's
// capacities, assuming activeHoursPerDay of daily use.
func CaaSPricing(activeHoursPerDay float64) ([]CaaSPrice, error) {
	if activeHoursPerDay <= 0 || activeHoursPerDay > 24 {
		return nil, fmt.Errorf("caas: active hours %v outside (0,24]", activeHoursPerDay)
	}
	catalog := cloud.DefaultCatalog()
	deployment := []struct {
		level    int
		typeName string
		capacity int
	}{
		{1, "t2.nano", 30},
		{2, "t2.large", 90},
		{3, "m4.4xlarge", 400},
		{4, "c4.8xlarge", 900},
	}
	var out []CaaSPrice
	for _, d := range deployment {
		typ, err := catalog.ByName(d.typeName)
		if err != nil {
			return nil, err
		}
		perUserHour := typ.PricePerHour / float64(d.capacity)
		out = append(out, CaaSPrice{
			Level:          d.level,
			TypeName:       d.typeName,
			PricePerHour:   typ.PricePerHour,
			CapacityUsers:  d.capacity,
			UserHourUSD:    perUserHour,
			UserMonthUSD:   perUserHour * activeHoursPerDay * 30,
			ActiveHrPerDay: activeHoursPerDay,
		})
	}
	return out, nil
}

// CaaSTable renders the pricing analysis.
func CaaSTable(rows []CaaSPrice) Table {
	t := Table{
		Title:  "CaaS pricing (§VII-4): provider cost per served user by acceleration level",
		Header: []string{"level", "instance", "$/instance-h", "capacity", "$/user-h", "$/user-month"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Level), r.TypeName,
			fmt.Sprintf("%.4f", r.PricePerHour),
			fmt.Sprintf("%d", r.CapacityUsers),
			fmt.Sprintf("%.6f", r.UserHourUSD),
			fmt.Sprintf("%.4f", r.UserMonthUSD),
		})
	}
	return t
}
