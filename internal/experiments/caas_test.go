package experiments

import "testing"

func TestCaaSPricing(t *testing.T) {
	rows, err := CaaSPricing(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The §VII-4 viability claim: even the top level costs a provider
	// fractions of a dollar per user-month at realistic multi-tenancy —
	// far below replacing a device.
	for _, r := range rows {
		if r.UserHourUSD <= 0 {
			t.Fatalf("level %d user-hour cost %v", r.Level, r.UserHourUSD)
		}
		if r.UserMonthUSD > 2 {
			t.Fatalf("level %d user-month cost $%.2f implausibly high", r.Level, r.UserMonthUSD)
		}
	}
	// Higher levels cost more per user than level 1 (the upsell).
	if rows[0].UserHourUSD >= rows[2].UserHourUSD {
		t.Fatalf("level 1 ($%.6f) should undercut level 3 ($%.6f)",
			rows[0].UserHourUSD, rows[2].UserHourUSD)
	}
	if len(CaaSTable(rows).Rows) != 4 {
		t.Fatal("table wrong")
	}
}

func TestCaaSPricingValidation(t *testing.T) {
	if _, err := CaaSPricing(0); err == nil {
		t.Fatal("zero hours should fail")
	}
	if _, err := CaaSPricing(25); err == nil {
		t.Fatal("25 hours should fail")
	}
}
