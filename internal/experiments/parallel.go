package experiments

import (
	"fmt"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/qsim"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

// ParallelismOutcome compares a serial task against its parallelized
// variant on one instance type (the §VII-1 extension): the serial task
// hits the acceleration limit — one core — regardless of instance size,
// while the parallel variant keeps accelerating.
type ParallelismOutcome struct {
	TypeName   string
	SerialMs   float64
	ParallelMs float64
	Speedup    float64
	CoresUsed  int
}

// AblationParallelism measures matmul vs parmatmul solo latency on a
// ladder of instance types.
func AblationParallelism(s Scale) ([]ParallelismOutcome, error) {
	catalog := cloud.DefaultCatalog()
	const size = 96 // 96³ work units; parallelism 12 on parmatmul
	serialWork := tasks.MatMul{}.Work(size)
	parTask := tasks.ParMatMul{}
	parWork := parTask.Work(size)
	cores := parTask.Parallelism(size)

	var out []ParallelismOutcome
	for _, name := range []string{"t2.nano", "t2.large", "m4.4xlarge", "m4.10xlarge"} {
		typ, err := catalog.ByName(name)
		if err != nil {
			return nil, err
		}
		run := func(parallel bool) (time.Duration, error) {
			env := sim.NewEnvironment()
			inst, err := cloud.NewInstance("par-"+name, typ, env.Now())
			if err != nil {
				return 0, err
			}
			srv, err := qsim.NewServer(env, inst, qsim.Config{})
			if err != nil {
				return 0, err
			}
			var got qsim.Outcome
			if parallel {
				err = srv.SubmitParallel(parWork, cores, func(o qsim.Outcome) { got = o })
			} else {
				err = srv.Submit(serialWork, func(o qsim.Outcome) { got = o })
			}
			if err != nil {
				return 0, err
			}
			if err := env.Run(); err != nil {
				return 0, err
			}
			if got.Dropped {
				return 0, fmt.Errorf("parallelism ablation: request dropped on %s", name)
			}
			return got.Latency, nil
		}
		serial, err := run(false)
		if err != nil {
			return nil, err
		}
		parallel, err := run(true)
		if err != nil {
			return nil, err
		}
		out = append(out, ParallelismOutcome{
			TypeName:   name,
			SerialMs:   float64(serial) / float64(time.Millisecond),
			ParallelMs: float64(parallel) / float64(time.Millisecond),
			Speedup:    float64(serial) / float64(parallel),
			CoresUsed:  minInt(cores, typ.VCPU),
		})
	}
	return out, nil
}

// ParallelismTable renders the §VII-1 ablation.
func ParallelismTable(rows []ParallelismOutcome) Table {
	t := Table{
		Title:  "Ablation (§VII-1): serial acceleration limit vs code parallelization (matmul 96³)",
		Header: []string{"instance", "serial_ms", "parallel_ms", "speedup", "cores_used"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.TypeName, f1(r.SerialMs), f1(r.ParallelMs), f2(r.Speedup),
			fmt.Sprintf("%d", r.CoresUsed),
		})
	}
	return t
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
