package experiments

import (
	"strings"
	"testing"
)

func TestRunnerReportsInRegistryOrder(t *testing.T) {
	// Ask for a subset out of order plus a duplicate: reports come back
	// deduplicated, in registry order.
	reports, err := Runner{Scale: Quick(), Workers: 2}.Run("fig11", "caas", "fig11")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	if reports[0].Name != "fig11" || reports[1].Name != "caas" {
		t.Fatalf("report order: %s, %s", reports[0].Name, reports[1].Name)
	}
	if err := FirstError(reports); err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if len(rep.Artifact.Tables) == 0 {
			t.Fatalf("%s produced no tables", rep.Name)
		}
		if rep.Elapsed <= 0 {
			t.Fatalf("%s has no elapsed time", rep.Name)
		}
	}
}

func TestRunnerUnknownExperiment(t *testing.T) {
	if _, err := (Runner{Scale: Quick()}).Run("fig99"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestExperimentNamesCoversRegistry(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 10 {
		t.Fatalf("registry has %d entries: %v", len(names), names)
	}
	// The slice is a copy: mutating it must not corrupt the registry.
	names[0] = "mutated"
	if ExperimentNames()[0] != "fig4" {
		t.Fatal("ExperimentNames leaked internal state")
	}
}

func TestTimingTable(t *testing.T) {
	reports, err := Runner{Scale: Quick(), Workers: 2}.Run("caas")
	if err != nil {
		t.Fatal(err)
	}
	tab := TimingTable(reports, 2)
	if !strings.Contains(tab.Title, "2 worker") {
		t.Fatalf("title = %q", tab.Title)
	}
	if len(tab.Rows) != 2 { // caas + sum-elapsed
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "caas" || tab.Rows[0][2] != "ok" {
		t.Fatalf("row = %v", tab.Rows[0])
	}
	if tab.Rows[1][0] != "sum-elapsed" {
		t.Fatalf("last row = %v", tab.Rows[1])
	}
}
