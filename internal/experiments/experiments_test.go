package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"accelcloud/internal/netsim"
)

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	if err := tab.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	tsv := buf.String()
	if !strings.HasPrefix(tsv, "# demo\na\tbb\n1\t2\n333\t4\n") {
		t.Fatalf("tsv = %q", tsv)
	}
	s := tab.String()
	if !strings.Contains(s, "== demo ==") || !strings.Contains(s, "333  4") {
		t.Fatalf("string = %q", s)
	}
}

// E1: Fig 4 — the classification and the "less steep slope on powerful
// instances" claim.
func TestFig4(t *testing.T) {
	r, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Measurements) != 6 {
		t.Fatalf("got %d measurements, want 6", len(r.Measurements))
	}
	// t2.micro must land strictly below t2.nano (the Fig 6 anomaly).
	micro, ok1 := r.Grouping.LevelOf("t2.micro")
	nano, ok2 := r.Grouping.LevelOf("t2.nano")
	big, ok3 := r.Grouping.LevelOf("m4.10xlarge")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("types not classified")
	}
	if micro >= nano || nano >= big {
		t.Fatalf("levels: micro %d, nano %d, m4.10xlarge %d", micro, nano, big)
	}
	tab := r.Table()
	if len(tab.Rows) != len(Quick().LoadLevels) {
		t.Fatalf("table rows = %d", len(tab.Rows))
	}
}

// E2: Fig 5 — acceleration factors ≈1.25 / ≈1.73 / ≈1.36.
func TestFig5(t *testing.T) {
	r, err := Fig5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.L2vsL1-1.25) > 0.1 {
		t.Errorf("L2/L1 = %.3f, paper ≈1.25", r.L2vsL1)
	}
	if math.Abs(r.L3vsL1-1.73) > 0.1 {
		t.Errorf("L3/L1 = %.3f, paper ≈1.73", r.L3vsL1)
	}
	if math.Abs(r.L3vsL2-1.36) > 0.1 {
		t.Errorf("L3/L2 = %.3f, paper ≈1.36", r.L3vsL2)
	}
	if len(r.Table().Rows) == 0 {
		t.Fatal("empty table")
	}
}

// E3: Fig 6 — nano beats micro under load.
func TestFig6(t *testing.T) {
	r, err := Fig6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nano) != len(r.Micro) || len(r.Nano) == 0 {
		t.Fatal("curves missing")
	}
	// At high load the micro's mean response exceeds the nano's.
	last := len(r.Nano) - 1
	if r.Micro[last].MeanMs <= r.Nano[last].MeanMs {
		t.Fatalf("micro %.1f ms should exceed nano %.1f ms at load %d",
			r.Micro[last].MeanMs, r.Nano[last].MeanMs, r.Nano[last].Users)
	}
	if len(r.Table().Rows) != len(r.Nano) {
		t.Fatal("table size wrong")
	}
}

// E4/E5: Fig 7 — component decomposition and SD curves.
func TestFig7(t *testing.T) {
	r, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerLevel) != 4 {
		t.Fatalf("got %d levels", len(r.PerLevel))
	}
	for lvl, c := range r.PerLevel {
		// Consistency: total ≈ T1 + routing + T2 + Tcloud.
		sum := c.T1Ms + c.RoutingMs + c.T2Ms + c.TcloudMs
		if math.Abs(sum-c.TotalMs) > 0.05*c.TotalMs+5 {
			t.Errorf("level %d: components %.1f vs total %.1f", lvl, sum, c.TotalMs)
		}
		// Routing ≈ 150 ms everywhere.
		if math.Abs(c.RoutingMs-150) > 30 {
			t.Errorf("level %d routing %.1f ms, want ≈150", lvl, c.RoutingMs)
		}
	}
	// Tcloud decreases with acceleration level (the point of Fig 7b).
	if !(r.PerLevel[1].TcloudMs > r.PerLevel[2].TcloudMs &&
		r.PerLevel[2].TcloudMs > r.PerLevel[3].TcloudMs &&
		r.PerLevel[3].TcloudMs >= r.PerLevel[4].TcloudMs) {
		t.Errorf("Tcloud not decreasing: %v %v %v %v",
			r.PerLevel[1].TcloudMs, r.PerLevel[2].TcloudMs,
			r.PerLevel[3].TcloudMs, r.PerLevel[4].TcloudMs)
	}
	if len(r.ComponentsTable().Rows) != 4 {
		t.Fatal("components table wrong")
	}
	if len(r.SDTable().Rows) == 0 {
		t.Fatal("sd table empty")
	}
}

// E6/E7/E12: Fig 8 — ≈150 ms routing, saturation knee, drops beyond it.
func TestFig8(t *testing.T) {
	r, err := Fig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for g := 1; g <= 4; g++ {
		if math.Abs(r.RoutingMeanMs[g]-150) > 25 {
			t.Errorf("group %d routing %.1f ms, want ≈150", g, r.RoutingMeanMs[g])
		}
		if len(r.RoutingSeries[g]) == 0 {
			t.Errorf("group %d has no routing series", g)
		}
	}
	if len(r.Sweep) != 11 {
		t.Fatalf("sweep has %d points", len(r.Sweep))
	}
	// The knee: paper saturates at 32 Hz. Accept 16–64 Hz.
	if r.SaturationHz < 16 || r.SaturationHz > 64 {
		t.Errorf("saturation at %.0f Hz, paper ≈32 Hz", r.SaturationHz)
	}
	// Below the knee: no drops. At 1024 Hz: heavy drops.
	if r.Sweep[0].FailPct != 0 {
		t.Errorf("drops at 1 Hz: %+v", r.Sweep[0])
	}
	last := r.Sweep[len(r.Sweep)-1]
	if last.FailPct < 50 {
		t.Errorf("1024 Hz fail %.1f%%, want heavy failure", last.FailPct)
	}
	// Response time at the end is far above the unloaded response.
	if last.MeanMs < 5*r.Sweep[0].MeanMs {
		t.Errorf("no collapse: %.1f vs %.1f ms", last.MeanMs, r.Sweep[0].MeanMs)
	}
	if len(r.RoutingTable().Rows) != 4 || len(r.SweepTable().Rows) != 11 {
		t.Fatal("tables wrong")
	}
}

// E8: Fig 9 — stable user stays slow, promoted user speeds up.
func TestFig9(t *testing.T) {
	r, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Run.Requests) < 500 {
		t.Fatalf("only %d requests", len(r.Run.Requests))
	}
	// The stable user's requests are all group 1.
	for _, p := range r.Stable.Points {
		if p.Group != 1 {
			t.Fatalf("stable user served by group %d", p.Group)
		}
	}
	// The promoted user visits all three groups.
	seen := map[int]bool{}
	for _, p := range r.Promoted.Points {
		seen[p.Group] = true
	}
	if !seen[1] || !seen[3] {
		t.Fatalf("promoted user groups = %v", seen)
	}
	// Response improves with acceleration: group means decrease.
	if !(r.MeanMsPerGroup[1] > r.MeanMsPerGroup[2] && r.MeanMsPerGroup[2] > r.MeanMsPerGroup[3]) {
		t.Errorf("group means not decreasing: %v", r.MeanMsPerGroup)
	}
	// The promoted user's responses at group 3 are faster on average
	// than at group 1.
	var g1, g3 []float64
	for _, p := range r.Promoted.Points {
		switch p.Group {
		case 1:
			g1 = append(g1, p.ResponseMs)
		case 3:
			g3 = append(g3, p.ResponseMs)
		}
	}
	if len(g1) == 0 || len(g3) == 0 {
		t.Fatal("promoted user series incomplete")
	}
	if mean(g3) >= mean(g1) {
		t.Errorf("promotion did not speed up user: g1 %.1f ms vs g3 %.1f ms", mean(g1), mean(g3))
	}
	if len(r.SeriesTable(r.Stable, "b").Rows) == 0 || len(r.GroupMeansTable().Rows) == 0 {
		t.Fatal("tables empty")
	}
}

// E9/E10: Fig 10 — accuracy rises with data and lands near 87.5%.
func TestFig10(t *testing.T) {
	f9, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fig10(Quick(), &f9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AccuracyCurve) == 0 {
		t.Fatal("no accuracy curve")
	}
	first, last := r.AccuracyCurve[0], r.AccuracyCurve[len(r.AccuracyCurve)-1]
	if last.Accuracy < first.Accuracy {
		t.Errorf("accuracy should improve with data: %v -> %v", first.Accuracy, last.Accuracy)
	}
	if math.Abs(r.OverallAccuracy-0.875) > 0.08 {
		t.Errorf("overall accuracy %.3f, paper ≈0.875", r.OverallAccuracy)
	}
	if len(r.Requests) == 0 || len(r.FinalGroups) == 0 || len(r.UserMeanMs) == 0 {
		t.Fatal("fig10 panels empty")
	}
	if len(r.AccuracyTable().Rows) == 0 || len(r.HeatTable(10).Rows) == 0 || len(r.PromotionTable().Rows) == 0 {
		t.Fatal("tables empty")
	}
}

// E11: Fig 11 — the LTE vs 3G aggregates match the paper.
func TestFig11(t *testing.T) {
	r, err := Fig11(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 6 {
		t.Fatalf("got %d series, want 6", len(r.Series))
	}
	for key, sum := range r.Summaries {
		paper := r.PaperMeanMs[key]
		if paper == 0 {
			t.Fatalf("no paper value for %s", key)
		}
		if rel := math.Abs(sum.Mean-paper) / paper; rel > 0.25 {
			t.Errorf("%s mean %.1f vs paper %.1f (%.0f%% off)", key, sum.Mean, paper, rel*100)
		}
	}
	if len(r.SummaryTable().Rows) != 6 {
		t.Fatal("summary table wrong")
	}
	if len(r.HourlyTable("alpha", netsim.Tech3G).Rows) != 24 {
		t.Fatal("hourly table wrong")
	}
}

func TestAblationPredictorsRanksNNFirst(t *testing.T) {
	rows, err := AblationPredictors(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Predictor] = r.Accuracy
	}
	if byName["edit-distance-nn"] < byName["moving-average"]-0.05 {
		t.Errorf("NN %.3f clearly worse than moving average %.3f",
			byName["edit-distance-nn"], byName["moving-average"])
	}
	if len(PredictorsTable(rows).Rows) != 3 {
		t.Fatal("table wrong")
	}
}

func TestAblationAllocators(t *testing.T) {
	rows, err := AblationAllocators(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var ilp, greedy, single AllocatorOutcome
	for _, r := range rows {
		switch r.Allocator {
		case "ilp":
			ilp = r
		case "greedy":
			greedy = r
		case "m4.10xlarge-only":
			single = r
		}
	}
	if ilp.Infeasible != greedy.Infeasible {
		t.Logf("feasibility differs: ilp %d vs greedy %d", ilp.Infeasible, greedy.Infeasible)
	}
	if ilp.TotalCost > greedy.TotalCost+1e-9 && ilp.Feasible == greedy.Feasible {
		t.Errorf("ILP total cost %.2f exceeds greedy %.2f", ilp.TotalCost, greedy.TotalCost)
	}
	// Vertical scaling wastes money or fails: per feasible round it must
	// not beat the ILP.
	if single.Feasible > 0 && ilp.Feasible > 0 {
		if single.TotalCost/float64(single.Feasible) < ilp.TotalCost/float64(ilp.Feasible) {
			t.Errorf("single-type average cost beats ILP: %.2f vs %.2f",
				single.TotalCost/float64(single.Feasible), ilp.TotalCost/float64(ilp.Feasible))
		}
	}
	if len(AllocatorsTable(rows).Rows) != 3 {
		t.Fatal("table wrong")
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
