package experiments

import (
	"fmt"
	"strconv"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/groups"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
	"accelcloud/internal/workload"
)

// fig4Types are the six instance types of Fig 4, in figure order.
var fig4Types = []string{
	"t2.nano", "t2.micro", "t2.small", "t2.medium", "t2.large", "m4.10xlarge",
}

// Fig4Result holds the instance-characterization curves and the derived
// acceleration grouping (Fig 4 / §VI-A).
type Fig4Result struct {
	Measurements []groups.Measurement
	Grouping     *groups.Grouping
}

// benchmarkConfig builds the shared characterization config for a scale.
func benchmarkConfig(s Scale) groups.BenchmarkConfig {
	return groups.BenchmarkConfig{
		LoadLevels:   s.LoadLevels,
		Waves:        s.BenchWaves,
		WaveInterval: time.Minute,
		SLA:          500 * time.Millisecond,
		Pool:         tasks.DefaultPool(),
		Sizer:        workload.DefaultSizer(),
		Seed:         s.Seed,
		Parallelism:  s.Workers,
	}
}

// Fig4 stresses every catalog type with concurrent batches (1–100 users)
// and classifies the types into acceleration levels.
func Fig4(s Scale) (Fig4Result, error) {
	cfg := benchmarkConfig(s)
	catalog := cloud.DefaultCatalog()
	var out Fig4Result
	// Each type's characterization is a self-contained simulation, so the
	// six types shard across the worker budget; every type also shards
	// its load levels internally on the remainder of the budget. Results
	// land in figure order regardless of completion order.
	cfg.Parallelism = splitWorkers(s.Workers, len(fig4Types))
	out.Measurements = make([]groups.Measurement, len(fig4Types))
	err := sim.FanOutErr(len(fig4Types), s.Workers, func(i int) error {
		name := fig4Types[i]
		typ, err := catalog.ByName(name)
		if err != nil {
			return err
		}
		m, err := groups.Benchmark(typ, cfg)
		if err != nil {
			return fmt.Errorf("fig4: %s: %w", name, err)
		}
		out.Measurements[i] = m
		return nil
	})
	if err != nil {
		return Fig4Result{}, err
	}
	g, err := groups.Classify(out.Measurements, 0.12)
	if err != nil {
		return Fig4Result{}, err
	}
	out.Grouping = g
	return out, nil
}

// Table renders the Fig 4 curves (mean response time per load level).
func (r Fig4Result) Table() Table {
	t := Table{
		Title:  "Fig 4: response time [ms] vs concurrent users, per instance type",
		Header: []string{"users"},
	}
	for _, m := range r.Measurements {
		lvl, _ := r.Grouping.LevelOf(m.Type)
		t.Header = append(t.Header, fmt.Sprintf("%s(L%d)", m.Type, lvl))
	}
	if len(r.Measurements) == 0 {
		return t
	}
	for i, p := range r.Measurements[0].Curve {
		row := []string{strconv.Itoa(p.Users)}
		for _, m := range r.Measurements {
			row = append(row, f1(m.Curve[i].MeanMs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5Result holds the static-minimax acceleration-level comparison
// (Fig 5): one curve per level and the headline acceleration factors.
type Fig5Result struct {
	// Curves maps acceleration level (1..3) to its load curve.
	Curves map[int][]groups.LoadPoint
	// L2vsL1, L3vsL1, L3vsL2 are the solo-time acceleration factors the
	// paper reports as ≈1.25, ≈1.73, ≈1.36.
	L2vsL1, L3vsL1, L3vsL2 float64
}

// fig5Levels maps acceleration level to its representative type.
var fig5Levels = map[int]string{
	1: "t2.nano",
	2: "t2.large",
	3: "m4.10xlarge",
}

// Fig5 benchmarks one representative type per acceleration level with
// the static minimax task.
func Fig5(s Scale) (Fig5Result, error) {
	cfg := benchmarkConfig(s)
	cfg.FixedTask = "minimax"
	cfg.Sizer = workload.FixedSizer{Size: 8}
	catalog := cloud.DefaultCatalog()
	out := Fig5Result{Curves: make(map[int][]groups.LoadPoint, len(fig5Levels))}
	solo := make(map[int]float64, len(fig5Levels))
	for lvl, name := range fig5Levels {
		typ, err := catalog.ByName(name)
		if err != nil {
			return Fig5Result{}, err
		}
		m, err := groups.Benchmark(typ, cfg)
		if err != nil {
			return Fig5Result{}, fmt.Errorf("fig5: %s: %w", name, err)
		}
		out.Curves[lvl] = m.Curve
		solo[lvl] = m.SoloMs
	}
	out.L2vsL1 = solo[1] / solo[2]
	out.L3vsL1 = solo[1] / solo[3]
	out.L3vsL2 = solo[2] / solo[3]
	return out, nil
}

// Table renders the Fig 5 curves and factors.
func (r Fig5Result) Table() Table {
	t := Table{
		Title: fmt.Sprintf(
			"Fig 5: static minimax by acceleration level (L2/L1=%.2f, L3/L1=%.2f, L3/L2=%.2f)",
			r.L2vsL1, r.L3vsL1, r.L3vsL2),
		Header: []string{"users", "accel1_ms", "accel2_ms", "accel3_ms"},
	}
	if len(r.Curves[1]) == 0 {
		return t
	}
	for i := range r.Curves[1] {
		row := []string{strconv.Itoa(r.Curves[1][i].Users)}
		for lvl := 1; lvl <= 3; lvl++ {
			row = append(row, f1(r.Curves[lvl][i].MeanMs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig6Result holds the t2.nano vs t2.micro anomaly curves (mean and SD).
type Fig6Result struct {
	Nano  []groups.LoadPoint
	Micro []groups.LoadPoint
}

// Fig6 re-runs the characterization for the two anomalous types.
func Fig6(s Scale) (Fig6Result, error) {
	cfg := benchmarkConfig(s)
	catalog := cloud.DefaultCatalog()
	var out Fig6Result
	for _, name := range []string{"t2.nano", "t2.micro"} {
		typ, err := catalog.ByName(name)
		if err != nil {
			return Fig6Result{}, err
		}
		m, err := groups.Benchmark(typ, cfg)
		if err != nil {
			return Fig6Result{}, fmt.Errorf("fig6: %s: %w", name, err)
		}
		if name == "t2.nano" {
			out.Nano = m.Curve
		} else {
			out.Micro = m.Curve
		}
	}
	return out, nil
}

// Table renders the anomaly comparison.
func (r Fig6Result) Table() Table {
	t := Table{
		Title:  "Fig 6: t2.nano vs t2.micro anomaly (mean and SD, ms)",
		Header: []string{"users", "nano_mean", "micro_mean", "nano_sd", "micro_sd"},
	}
	for i := range r.Nano {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(r.Nano[i].Users),
			f1(r.Nano[i].MeanMs), f1(r.Micro[i].MeanMs),
			f1(r.Nano[i].SDMs), f1(r.Micro[i].SDMs),
		})
	}
	return t
}
