package experiments

import (
	"fmt"
	"sort"
	"strconv"

	"accelcloud/internal/netsim"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
)

// Fig11Result holds the network-latency study: hourly RTT series per
// operator/technology and the aggregate summaries the paper reports.
type Fig11Result struct {
	Series []netsim.HourlySeries
	// Summaries maps "operator/tech" to the sample aggregates.
	Summaries map[string]stats.Summary
	// PaperMeanMs maps the same keys to the paper's reported means.
	PaperMeanMs map[string]float64
}

// Fig11 synthesizes the NetRadar-like dataset and aggregates it hourly,
// per operator and technology.
func Fig11(s Scale) (Fig11Result, error) {
	ops, err := netsim.DefaultOperators()
	if err != nil {
		return Fig11Result{}, err
	}
	// The paper draws 150k–500k samples per pair; the sharded generator
	// splits each pair into fixed-size chunks with their own substreams,
	// so the dataset is identical at any worker count.
	samples, err := netsim.GenerateDatasetSharded(
		sim.NewRNG(s.Seed).Sub("fig11"), ops, sim.Epoch, s.NetSamples, s.Workers)
	if err != nil {
		return Fig11Result{}, err
	}
	out := Fig11Result{
		Series:      netsim.AggregateHourly(samples),
		Summaries:   make(map[string]stats.Summary),
		PaperMeanMs: make(map[string]float64),
	}
	for _, op := range ops {
		for _, tech := range []netsim.Tech{netsim.Tech3G, netsim.TechLTE} {
			key := fmt.Sprintf("%s/%s", op.Name, tech)
			sum, err := netsim.SummaryMs(samples, op.Name, tech)
			if err != nil {
				return Fig11Result{}, err
			}
			out.Summaries[key] = sum
			out.PaperMeanMs[key] = netsim.PaperMeanMs(op.Name, tech)
		}
	}
	return out, nil
}

// SummaryTable renders the paper-vs-measured aggregates.
func (r Fig11Result) SummaryTable() Table {
	t := Table{
		Title:  "Fig 11: RTT aggregates per operator and technology",
		Header: []string{"operator/tech", "mean_ms", "median_ms", "sd_ms", "paper_mean_ms"},
	}
	keys := make([]string, 0, len(r.Summaries))
	for k := range r.Summaries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := r.Summaries[k]
		t.Rows = append(t.Rows, []string{
			k, f1(s.Mean), f1(s.Median), f1(s.SD), f1(r.PaperMeanMs[k]),
		})
	}
	return t
}

// HourlyTable renders one hourly mean-RTT series.
func (r Fig11Result) HourlyTable(operator string, tech netsim.Tech) Table {
	t := Table{
		Title:  fmt.Sprintf("Fig 11: hourly mean RTT [ms], %s %s", operator, tech),
		Header: []string{"hour", "mean_ms", "samples"},
	}
	for _, s := range r.Series {
		if s.Operator != operator || s.Tech != tech {
			continue
		}
		for h := 0; h < 24; h++ {
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(h), f1(s.MeanMs[h]), strconv.Itoa(s.Count[h]),
			})
		}
	}
	return t
}
