package experiments

import (
	"fmt"
	"strconv"
	"time"

	"accelcloud/internal/allocate"
	"accelcloud/internal/core"
	"accelcloud/internal/device"
	"accelcloud/internal/predict"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
	"accelcloud/internal/trace"
	"accelcloud/internal/workload"
)

// The ablations quantify the design choices the paper discusses: the
// client-side promotion policy (§VI-C3, §VII-3), the history-based
// predictor (§IV-B), and exact ILP allocation versus simpler strategies
// (§III, §IV-C).

// PolicyOutcome is one promotion-policy run.
type PolicyOutcome struct {
	Policy       string
	MeanMs       float64
	P95Ms        float64
	Promotions   int
	TotalCostUSD float64
}

// AblationPromotionPolicies runs the Fig 9 experiment under each
// moderator policy.
func AblationPromotionPolicies(s Scale) ([]PolicyOutcome, error) {
	policies := []device.PromotionPolicy{
		device.StaticProbability{P: 1.0 / 50},
		device.Threshold{Target: 2 * time.Second, Patience: 3},
		device.BatteryAware{MinLevel: 0.3, Target: 2 * time.Second},
		device.Never{},
	}
	dist, err := fig9InterArrival(s)
	if err != nil {
		return nil, err
	}
	dur := time.Duration(s.StudyHours * float64(time.Hour))
	reqs, err := workload.GenerateInterArrival(
		sim.NewRNG(s.Seed).Stream("ablation-wl"), sim.Epoch,
		workload.InterArrivalConfig{
			Users:        s.StudyUsers,
			InterArrival: dist,
			Duration:     dur,
			Pool:         tasks.DefaultPool(),
			Sizer:        workload.FixedSizer{Size: 8},
			FixedTask:    "minimax",
		})
	if err != nil {
		return nil, err
	}
	var out []PolicyOutcome
	for _, pol := range policies {
		sys, err := core.New(core.Config{
			Groups:            fig9Groups(),
			ProvisionInterval: 30 * time.Minute,
			Background:        fig9Background(),
			Policy:            pol,
			Seed:              s.Seed,
		})
		if err != nil {
			return nil, err
		}
		run, err := sys.Run(reqs, dur)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", pol.Name(), err)
		}
		var ms []float64
		for _, r := range run.Requests {
			if !r.Dropped {
				ms = append(ms, r.ResponseMs)
			}
		}
		p95 := 0.0
		if len(ms) > 0 {
			if v, err := percentile95(ms); err == nil {
				p95 = v
			}
		}
		out = append(out, PolicyOutcome{
			Policy:       pol.Name(),
			MeanMs:       run.MeanResponseMs(),
			P95Ms:        p95,
			Promotions:   len(run.Promotions),
			TotalCostUSD: run.TotalCostUSD,
		})
	}
	return out, nil
}

// PoliciesTable renders the promotion-policy ablation.
func PoliciesTable(rows []PolicyOutcome) Table {
	t := Table{
		Title:  "Ablation: promotion policies (Fig 9 workload)",
		Header: []string{"policy", "mean_ms", "p95_ms", "promotions", "cost_usd"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Policy, f1(r.MeanMs), f1(r.P95Ms), strconv.Itoa(r.Promotions), f2(r.TotalCostUSD),
		})
	}
	return t
}

// PredictorOutcome is one predictor's cross-validated accuracy.
type PredictorOutcome struct {
	Predictor string
	Accuracy  float64
}

// AblationPredictors cross-validates each predictor on the 16-hour
// history of Fig 10a.
func AblationPredictors(s Scale) ([]PredictorOutcome, error) {
	records, err := historyRecords(s)
	if err != nil {
		return nil, err
	}
	slots, err := trace.BuildSlots(records, sim.Epoch, time.Hour, s.HistoryHours, 4)
	if err != nil {
		return nil, err
	}
	predictors := []predict.Predictor{
		predict.EditDistanceNN{},
		predict.LastValue{},
		predict.MovingAverage{Window: 3},
	}
	var out []PredictorOutcome
	for _, p := range predictors {
		acc, err := predict.CrossValidate(slots, p, 10, 2)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", p.Name(), err)
		}
		out = append(out, PredictorOutcome{Predictor: p.Name(), Accuracy: acc})
	}
	return out, nil
}

// PredictorsTable renders the predictor ablation.
func PredictorsTable(rows []PredictorOutcome) Table {
	t := Table{
		Title:  "Ablation: workload predictors (16 h history, 10-fold CV)",
		Header: []string{"predictor", "accuracy_pct"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Predictor, f1(100 * r.Accuracy)})
	}
	return t
}

// AllocatorOutcome is one allocator's cost across a demand sweep.
type AllocatorOutcome struct {
	Allocator  string
	TotalCost  float64
	Feasible   int
	Infeasible int
}

// AblationAllocators sweeps demand mixes through the exact ILP, the
// greedy heuristic, and single-type vertical scaling.
func AblationAllocators(s Scale) ([]AllocatorOutcome, error) {
	specs := []allocate.Spec{
		{TypeName: "t2.nano", Group: 0, CostPerHour: 0.0063, Capacity: 30},
		{TypeName: "t2.small", Group: 0, CostPerHour: 0.025, Capacity: 30},
		{TypeName: "t2.medium", Group: 1, CostPerHour: 0.05, Capacity: 60},
		{TypeName: "t2.large", Group: 1, CostPerHour: 0.101, Capacity: 90},
		{TypeName: "m4.4xlarge", Group: 2, CostPerHour: 0.888, Capacity: 400},
		{TypeName: "m4.10xlarge", Group: 2, CostPerHour: 2.22, Capacity: 800},
	}
	rng := sim.NewRNG(s.Seed).Stream("ablation-alloc")
	outcomes := map[string]*AllocatorOutcome{
		"ilp":              {Allocator: "ilp"},
		"greedy":           {Allocator: "greedy"},
		"m4.10xlarge-only": {Allocator: "m4.10xlarge-only"},
	}
	const rounds = 40
	for i := 0; i < rounds; i++ {
		p := &allocate.Problem{
			Specs: specs,
			Demands: []float64{
				float64(rng.Intn(200)),
				float64(rng.Intn(300)),
				float64(rng.Intn(1200)),
			},
		}
		ilpPlan, err := allocate.Solve(p)
		if err != nil {
			return nil, err
		}
		record(outcomes["ilp"], ilpPlan)
		greedyPlan, err := allocate.Greedy(p)
		if err != nil {
			return nil, err
		}
		record(outcomes["greedy"], greedyPlan)
		// Vertical scaling: one big type serving everything it can
		// (hierarchical mode so it is not trivially infeasible).
		ph := *p
		ph.Hierarchical = true
		vPlan, err := allocate.SingleType(&ph, "m4.10xlarge")
		if err != nil {
			return nil, err
		}
		record(outcomes["m4.10xlarge-only"], vPlan)
	}
	return []AllocatorOutcome{*outcomes["ilp"], *outcomes["greedy"], *outcomes["m4.10xlarge-only"]}, nil
}

func record(o *AllocatorOutcome, p allocate.Plan) {
	if p.Feasible {
		o.Feasible++
		o.TotalCost += p.Cost
	} else {
		o.Infeasible++
	}
}

// AllocatorsTable renders the allocator ablation.
func AllocatorsTable(rows []AllocatorOutcome) Table {
	t := Table{
		Title:  "Ablation: allocators over random demand mixes",
		Header: []string{"allocator", "total_cost_usd", "feasible", "infeasible"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Allocator, f2(r.TotalCost), strconv.Itoa(r.Feasible), strconv.Itoa(r.Infeasible),
		})
	}
	return t
}

// percentile95 is a tiny helper around stats.Percentile.
func percentile95(xs []float64) (float64, error) {
	return stats.Percentile(xs, 95)
}
