package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// Every experiment must be bit-for-bit reproducible for a given seed:
// that is the property that makes EXPERIMENTS.md's numbers checkable.
func TestFig4Deterministic(t *testing.T) {
	s := Quick()
	a, err := Fig4(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Measurements, b.Measurements) {
		t.Fatal("Fig4 not deterministic")
	}
}

func TestFig8Deterministic(t *testing.T) {
	s := Quick()
	a, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Sweep, b.Sweep) {
		t.Fatal("Fig8 sweep not deterministic")
	}
	if !reflect.DeepEqual(a.RoutingMeanMs, b.RoutingMeanMs) {
		t.Fatal("Fig8 routing not deterministic")
	}
}

func TestFig11Deterministic(t *testing.T) {
	s := Quick()
	a, err := Fig11(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Fatal("Fig11 not deterministic")
	}
}

// artifacts strips the wall-clock fields out of a report list, leaving
// only the deterministic payload.
func artifacts(t *testing.T, reports []Report) []Artifact {
	t.Helper()
	out := make([]Artifact, len(reports))
	for i, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("%s: %v", rep.Name, rep.Err)
		}
		out[i] = rep.Artifact
	}
	return out
}

// The acceptance bar of the parallel engine: a Runner with N > 1 workers
// must produce bit-identical figure results to serial execution. Every
// experiment and every inner shard owns an RNG substream derived from
// its identity alone, so worker count and scheduling cannot leak into
// the output.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick-profile suite several times")
	}
	serialRunner := Runner{Scale: Quick(), Workers: 1}
	serial, err := serialRunner.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := artifacts(t, serial)
	counts := []int{4, runtime.NumCPU()}
	for _, workers := range counts {
		par, err := Runner{Scale: Quick(), Workers: workers}.Run()
		if err != nil {
			t.Fatal(err)
		}
		got := artifacts(t, par)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d: experiment %s output differs from serial",
					workers, par[i].Name)
			}
		}
	}
}

// The sharded inner loops must also be worker-invariant one figure at a
// time (faster to localize a regression than the full-runner test).
func TestInnerShardingWorkerInvariance(t *testing.T) {
	serial := Quick() // Workers 0 → serial
	parallel := Quick()
	parallel.Workers = 4

	a4, err := Fig4(serial)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := Fig4(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a4, b4) {
		t.Error("Fig4 differs between serial and 4-worker inner sharding")
	}

	a11, err := Fig11(serial)
	if err != nil {
		t.Fatal(err)
	}
	b11, err := Fig11(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a11, b11) {
		t.Error("Fig11 differs between serial and 4-worker inner sharding")
	}

	ha, err := historyRecords(serial)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := historyRecords(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ha, hb) {
		t.Error("fig10 history differs between serial and 4-worker generation")
	}
}

// Different seeds must actually change stochastic outputs (no hidden
// fixed seeding).
func TestSeedChangesOutput(t *testing.T) {
	a := Quick()
	b := Quick()
	b.Seed = 999
	ra, err := Fig11(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Fig11(b)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ra.Series, rb.Series) {
		t.Fatal("different seeds produced identical datasets")
	}
}
