package experiments

import (
	"reflect"
	"testing"
)

// Every experiment must be bit-for-bit reproducible for a given seed:
// that is the property that makes EXPERIMENTS.md's numbers checkable.
func TestFig4Deterministic(t *testing.T) {
	s := Quick()
	a, err := Fig4(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Measurements, b.Measurements) {
		t.Fatal("Fig4 not deterministic")
	}
}

func TestFig8Deterministic(t *testing.T) {
	s := Quick()
	a, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Sweep, b.Sweep) {
		t.Fatal("Fig8 sweep not deterministic")
	}
	if !reflect.DeepEqual(a.RoutingMeanMs, b.RoutingMeanMs) {
		t.Fatal("Fig8 routing not deterministic")
	}
}

func TestFig11Deterministic(t *testing.T) {
	s := Quick()
	a, err := Fig11(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Fatal("Fig11 not deterministic")
	}
}

// Different seeds must actually change stochastic outputs (no hidden
// fixed seeding).
func TestSeedChangesOutput(t *testing.T) {
	a := Quick()
	b := Quick()
	b.Seed = 999
	ra, err := Fig11(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Fig11(b)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ra.Series, rb.Series) {
		t.Fatal("different seeds produced identical datasets")
	}
}
