package experiments

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"accelcloud/internal/core"
	"accelcloud/internal/predict"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
	"accelcloud/internal/trace"
	"accelcloud/internal/workload"
)

// fig9Groups is the Fig 9a deployment: groups 1–3 handled by t2.nano,
// t2.large and m4.4xlarge.
func fig9Groups() []core.GroupSpec {
	return []core.GroupSpec{
		{Group: 1, TypeName: "t2.nano", Capacity: 30, Initial: 1},
		{Group: 2, TypeName: "t2.large", Capacity: 90, Initial: 1},
		{Group: 3, TypeName: "m4.4xlarge", Capacity: 400, Initial: 1},
	}
}

// fig9Background reproduces §VI-C1's induced load ("50 concurrent users
// in each server ... each 2 seconds" = 25 req/s): per-group work sizes
// are calibrated so the static minimax task observes the paper's
// response-time ordering across levels.
func fig9Background() map[int]core.BackgroundLoad {
	return map[int]core.BackgroundLoad{
		1: {RatePerSec: 25, Work: 7300},
		2: {RatePerSec: 25, Work: 17000},
		3: {RatePerSec: 25, Work: 162000},
	}
}

// fig9InterArrival is the usage-study-derived arrival process: short
// in-session gaps (100–5000 ms, the §VI-C1 extraction) mixed with longer
// think periods sized so every user issues ≈40 requests over the study
// (the paper's ≈4000 requests from 100 users over 8 h).
func fig9InterArrival(s Scale) (stats.Dist, error) {
	const reqsPerUser = 40.0
	meanGapMs := s.StudyHours * 3600 * 1000 / reqsPerUser
	// 20% in-session gaps at mean 2550 ms; the rest are think periods.
	longMean := (meanGapMs - 0.2*2550) / 0.8
	if longMean < 10_000 {
		longMean = 10_000
	}
	return stats.NewMixture(
		[]stats.Dist{
			stats.Uniform{Lo: 100, Hi: 5000}, // in-session
			stats.Uniform{Lo: 0.4 * longMean, Hi: 1.6 * longMean},
		},
		[]float64{0.2, 0.8},
	)
}

// UserSeries is one device's request history (Fig 9b/9c).
type UserSeries struct {
	UserID int
	// Seq is the per-user request sequence number.
	Points []UserPoint
}

// UserPoint is one request of a user series.
type UserPoint struct {
	Seq        int
	Group      int
	ResponseMs float64
}

// Fig9Result holds the dynamic-acceleration experiment.
type Fig9Result struct {
	// Run is the full system result (also feeds Fig 10b/10c).
	Run core.Result
	// Stable is a user that was never promoted (the paper's user 32).
	Stable UserSeries
	// Promoted is a user promoted up to the highest group (user 8).
	Promoted UserSeries
	// MeanMsPerGroup is the mean response by serving group.
	MeanMsPerGroup map[int]float64
}

// Fig9 runs the 8-hour dynamic-acceleration experiment: StudyUsers
// devices offloading the static minimax task with the paper's promotion
// probability of 1/50, with per-server background load, prediction and
// allocation every provisioning interval.
func Fig9(s Scale) (Fig9Result, error) {
	sys, err := core.New(core.Config{
		Groups:            fig9Groups(),
		ProvisionInterval: 30 * time.Minute,
		Background:        fig9Background(),
		Seed:              s.Seed,
	})
	if err != nil {
		return Fig9Result{}, err
	}
	dist, err := fig9InterArrival(s)
	if err != nil {
		return Fig9Result{}, err
	}
	dur := time.Duration(s.StudyHours * float64(time.Hour))
	reqs, err := workload.GenerateInterArrival(
		sim.NewRNG(s.Seed).Stream("fig9-wl"), sim.Epoch,
		workload.InterArrivalConfig{
			Users:        s.StudyUsers,
			InterArrival: dist,
			Duration:     dur,
			Pool:         tasks.DefaultPool(),
			Sizer:        workload.FixedSizer{Size: 8},
			FixedTask:    "minimax",
		})
	if err != nil {
		return Fig9Result{}, err
	}
	run, err := sys.Run(reqs, dur)
	if err != nil {
		return Fig9Result{}, err
	}
	out := Fig9Result{Run: run, MeanMsPerGroup: make(map[int]float64)}

	// Per-user series.
	byUser := make(map[int][]UserPoint)
	for _, r := range run.Requests {
		if r.Dropped {
			continue
		}
		byUser[r.UserID] = append(byUser[r.UserID], UserPoint{
			Seq: len(byUser[r.UserID]), Group: r.Group, ResponseMs: r.ResponseMs,
		})
	}
	// Stable user: never left the lowest group, most requests.
	// Promoted user: reached the highest group, most requests.
	bestStable, bestPromoted := -1, -1
	for uid, pts := range byUser {
		final := run.FinalGroups[uid]
		if final == 1 {
			if bestStable == -1 || len(pts) > len(byUser[bestStable]) {
				bestStable = uid
			}
		}
		if final == 3 {
			if bestPromoted == -1 || len(pts) > len(byUser[bestPromoted]) {
				bestPromoted = uid
			}
		}
	}
	if bestStable == -1 || bestPromoted == -1 {
		return Fig9Result{}, errors.New("fig9: run produced no stable or no fully-promoted user; increase duration")
	}
	out.Stable = UserSeries{UserID: bestStable, Points: byUser[bestStable]}
	out.Promoted = UserSeries{UserID: bestPromoted, Points: byUser[bestPromoted]}

	sums := map[int]*stats.Welford{}
	for _, r := range run.Requests {
		if r.Dropped {
			continue
		}
		if sums[r.Group] == nil {
			sums[r.Group] = &stats.Welford{}
		}
		sums[r.Group].Add(r.ResponseMs)
	}
	for g, w := range sums {
		out.MeanMsPerGroup[g] = w.Mean()
	}
	return out, nil
}

// SeriesTable renders a user's Fig 9b/9c series.
func (r Fig9Result) SeriesTable(u UserSeries, label string) Table {
	t := Table{
		Title:  fmt.Sprintf("Fig 9 %s: user %d response time by request", label, u.UserID),
		Header: []string{"request", "group", "response_ms"},
	}
	for _, p := range u.Points {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p.Seq), strconv.Itoa(p.Group), f1(p.ResponseMs),
		})
	}
	return t
}

// GroupMeansTable summarizes mean response per serving group.
func (r Fig9Result) GroupMeansTable() Table {
	t := Table{
		Title:  "Fig 9: mean response [ms] per acceleration group",
		Header: []string{"group", "mean_ms"},
	}
	gs := make([]int, 0, len(r.MeanMsPerGroup))
	for g := range r.MeanMsPerGroup {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	for _, g := range gs {
		t.Rows = append(t.Rows, []string{strconv.Itoa(g), f1(r.MeanMsPerGroup[g])})
	}
	return t
}

// Fig10Result holds the prediction-accuracy experiment and the two
// 100-user heat maps.
type Fig10Result struct {
	// AccuracyCurve is Fig 10a: accuracy vs knowledge-base size.
	AccuracyCurve []predict.DataSizePoint
	// OverallAccuracy is the 10-fold cross-validation score (the paper
	// reports ≈87.5 %).
	OverallAccuracy float64
	// Requests is Fig 10b: (request index, group, response ms).
	Requests []core.RequestLog
	// FinalGroups is Fig 10c: user → final acceleration group.
	FinalGroups map[int]int
	// UserMeanMs maps user → mean response (the Fig 10c colour).
	UserMeanMs map[int]float64
}

// historyRecords synthesizes the 16-hour workload history of §VI-C2:
// users arrive per a diurnal activity curve, are promoted with the 1/50
// probability, and every request is logged with its acceleration group.
// Activity gating and promotion are per-user state, so each user's
// history is generated from its own RNG substream and the users shard
// across s.Workers goroutines; the merged, timestamp-sorted output is
// bit-identical at any worker count.
func historyRecords(s Scale) ([]trace.Record, error) {
	rng := sim.NewRNG(s.Seed)
	perUser := make([][]trace.Record, s.StudyUsers)
	// Smooth diurnal activity: fraction of users active each hour.
	activity := func(h int) float64 {
		return 0.45 + 0.35*math.Sin(2*math.Pi*float64(h-9)/24)
	}
	sim.FanOut(s.StudyUsers, s.Workers, func(u int) {
		urng := rng.SubN("fig10-user", u).Stream("history")
		group := 1
		// Stable per-user activity with mild churn hour to hour.
		base := float64((u*2654435761)%1000) / 1000
		var recs []trace.Record
		for h := 0; h < s.HistoryHours; h++ {
			hourStart := sim.Epoch.Add(time.Duration(h) * time.Hour)
			frac := activity(h % 24)
			// Churn amplitude 0.15 (was 0.08 under the shared-stream
			// generator): re-deriving per-user streams rerolled the
			// draws, and at 0.08 the accuracy-vs-data-size curve went
			// flat; more hour-to-hour churn restores the paper's
			// property that small knowledge bases predict worse.
			if base > frac+0.15*(urng.Float64()-0.5) {
				continue
			}
			// 2–6 requests in the active hour.
			n := 2 + urng.Intn(5)
			for k := 0; k < n; k++ {
				at := hourStart.Add(time.Duration(urng.Float64() * float64(time.Hour)))
				recs = append(recs, trace.Record{
					Timestamp:    at,
					UserID:       u,
					Group:        group,
					BatteryLevel: 1,
					RTT:          500 * time.Millisecond,
				})
				if urng.Float64() < 1.0/50 && group < 3 {
					group++
				}
			}
		}
		perUser[u] = recs
	})
	var records []trace.Record
	for _, recs := range perUser {
		records = append(records, recs...)
	}
	sort.Slice(records, func(i, j int) bool {
		if !records[i].Timestamp.Equal(records[j].Timestamp) {
			return records[i].Timestamp.Before(records[j].Timestamp)
		}
		return records[i].UserID < records[j].UserID // total order for determinism
	})
	return records, nil
}

// Fig10 computes the prediction-accuracy curve over the 16-hour history
// and reuses the Fig 9 run for the 100-user panels.
func Fig10(s Scale, fig9 *Fig9Result) (Fig10Result, error) {
	records, err := historyRecords(s)
	if err != nil {
		return Fig10Result{}, err
	}
	slots, err := trace.BuildSlots(records, sim.Epoch, time.Hour, s.HistoryHours, 4)
	if err != nil {
		return Fig10Result{}, err
	}
	sizes := make([]int, 0, s.HistoryHours-2)
	for sz := 2; sz <= s.HistoryHours-2 && sz <= 20; sz += 2 {
		sizes = append(sizes, sz)
	}
	// Each knowledge-base size is evaluated independently over the same
	// (read-only) slots, so the curve points shard across workers.
	curve := make([]predict.DataSizePoint, len(sizes))
	err = sim.FanOutErr(len(sizes), s.Workers, func(i int) error {
		pts, err := predict.AccuracyVsDataSize(slots, predict.EditDistanceNN{}, sizes[i:i+1])
		if err != nil {
			return err
		}
		curve[i] = pts[0]
		return nil
	})
	if err != nil {
		return Fig10Result{}, err
	}
	overall, err := predict.CrossValidate(slots, predict.EditDistanceNN{}, 10, 2)
	if err != nil {
		return Fig10Result{}, err
	}
	out := Fig10Result{AccuracyCurve: curve, OverallAccuracy: overall}

	if fig9 == nil {
		f9, err := Fig9(s)
		if err != nil {
			return Fig10Result{}, err
		}
		fig9 = &f9
	}
	out.Requests = fig9.Run.Requests
	out.FinalGroups = fig9.Run.FinalGroups
	out.UserMeanMs = make(map[int]float64, len(out.FinalGroups))
	acc := map[int]*stats.Welford{}
	for _, r := range fig9.Run.Requests {
		if r.Dropped {
			continue
		}
		if acc[r.UserID] == nil {
			acc[r.UserID] = &stats.Welford{}
		}
		acc[r.UserID].Add(r.ResponseMs)
	}
	for uid, w := range acc {
		out.UserMeanMs[uid] = w.Mean()
	}
	return out, nil
}

// AccuracyTable renders Fig 10a.
func (r Fig10Result) AccuracyTable() Table {
	t := Table{
		Title: fmt.Sprintf("Fig 10a: prediction accuracy vs data size (10-fold CV overall: %.1f%%)",
			100*r.OverallAccuracy),
		Header: []string{"data_size", "accuracy_pct"},
	}
	for _, p := range r.AccuracyCurve {
		t.Rows = append(t.Rows, []string{strconv.Itoa(p.Size), f1(100 * p.Accuracy)})
	}
	return t
}

// HeatTable renders Fig 10b (downsampled to every nth request).
func (r Fig10Result) HeatTable(every int) Table {
	if every < 1 {
		every = 1
	}
	t := Table{
		Title:  "Fig 10b: response time by request id and acceleration group",
		Header: []string{"request", "group", "response_ms"},
	}
	for i, req := range r.Requests {
		if req.Dropped || i%every != 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(req.Index), strconv.Itoa(req.Group), f1(req.ResponseMs),
		})
	}
	return t
}

// PromotionTable renders Fig 10c.
func (r Fig10Result) PromotionTable() Table {
	t := Table{
		Title:  "Fig 10c: final acceleration group and mean response per user",
		Header: []string{"user", "group", "mean_ms"},
	}
	uids := make([]int, 0, len(r.FinalGroups))
	for uid := range r.FinalGroups {
		uids = append(uids, uid)
	}
	sort.Ints(uids)
	for _, uid := range uids {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(uid), strconv.Itoa(r.FinalGroups[uid]), f1(r.UserMeanMs[uid]),
		})
	}
	return t
}
