package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/groups"
	"accelcloud/internal/netsim"
	"accelcloud/internal/qsim"
	"accelcloud/internal/sdn"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
	"accelcloud/internal/workload"
)

// fig7Deployment maps acceleration level to (type, pool size): the pools
// a 500 ms SLA allocator provisions for 30 users per level.
var fig7Deployment = map[int]struct {
	TypeName string
	Count    int
}{
	1: {"t2.nano", 3},
	2: {"t2.large", 2},
	3: {"m4.10xlarge", 1},
	4: {"c4.8xlarge", 1},
}

// Components is the Fig 7a/7b timing decomposition, mean milliseconds.
type Components struct {
	T1Ms      float64
	RoutingMs float64
	T2Ms      float64
	TcloudMs  float64
	TotalMs   float64
}

// Fig7Result holds the per-level component times (Fig 7b) and the
// response-time SD curves per level (Fig 7c).
type Fig7Result struct {
	// PerLevel maps acceleration level 1–4 to mean component times for
	// a 30-user concurrent load.
	PerLevel map[int]Components
	// SDCurves maps level to its (users, SD) curve.
	SDCurves map[int][]groups.LoadPoint
}

// Fig7 routes a 30-user concurrent minimax load through the
// SDN-accelerator at each acceleration level and decomposes the response
// time; it then re-benchmarks each level's representative type for the
// SD-vs-load curves.
func Fig7(s Scale) (Fig7Result, error) {
	out := Fig7Result{
		PerLevel: make(map[int]Components, len(fig7Deployment)),
		SDCurves: make(map[int][]groups.LoadPoint, len(fig7Deployment)),
	}
	catalog := cloud.DefaultCatalog()
	ops, err := netsim.DefaultOperators()
	if err != nil {
		return Fig7Result{}, err
	}
	beta, err := netsim.OperatorByName(ops, "beta")
	if err != nil {
		return Fig7Result{}, err
	}
	lte := beta.RTT[netsim.TechLTE]

	work := tasks.Minimax{}.Work(8)
	levels := make([]int, 0, len(fig7Deployment))
	for lvl := range fig7Deployment {
		levels = append(levels, lvl)
	}
	sort.Ints(levels)
	// Levels are independent deployments (own env, accelerator, pool and
	// RNG streams keyed by level), so they shard across the worker
	// budget; results are collected per level index and folded into the
	// maps afterwards, keeping the output identical at any worker count.
	perLevel := make([]Components, len(levels))
	sdCurves := make([][]groups.LoadPoint, len(levels))
	err = sim.FanOutErr(len(levels), s.Workers, func(li int) error {
		lvl := levels[li]
		dep := fig7Deployment[lvl]
		env := sim.NewEnvironment()
		rng := sim.NewRNG(s.Seed)
		accel, err := sdn.NewAccelerator(env, sdn.Config{RNG: rng.StreamN("fig7", lvl)})
		if err != nil {
			return err
		}
		typ, err := catalog.ByName(dep.TypeName)
		if err != nil {
			return err
		}
		if _, err := sdn.BuildPool(env, accel, lvl, typ, dep.Count, qsim.Config{}); err != nil {
			return err
		}
		netRng := rng.StreamN("fig7-net", lvl)
		var t1, routing, t2, tcloud, total stats.Welford
		for u := 0; u < 30; u++ {
			err := accel.Route(sdn.Request{
				UserID: u, Group: lvl, Work: work, BatteryLevel: 1,
				AccessRTT: lte.Sample(netRng, env.Now()),
			}, func(o sdn.Outcome) {
				if o.Dropped {
					return
				}
				ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
				t1.Add(ms(o.T1))
				routing.Add(ms(o.Routing))
				t2.Add(ms(o.T2))
				tcloud.Add(ms(o.Tcloud))
				total.Add(ms(o.Total))
			})
			if err != nil {
				return err
			}
		}
		if err := env.Run(); err != nil {
			return err
		}
		if total.N() != 30 {
			return fmt.Errorf("fig7: level %d completed %d/30", lvl, total.N())
		}
		perLevel[li] = Components{
			T1Ms:      t1.Mean(),
			RoutingMs: routing.Mean(),
			T2Ms:      t2.Mean(),
			TcloudMs:  tcloud.Mean(),
			TotalMs:   total.Mean(),
		}
		// Fig 7c: SD-vs-load of the representative type, on the worker
		// budget left over by the level fan-out.
		cfg := benchmarkConfig(s)
		cfg.Parallelism = splitWorkers(s.Workers, len(levels))
		m, err := groups.Benchmark(typ, cfg)
		if err != nil {
			return err
		}
		sdCurves[li] = m.Curve
		return nil
	})
	if err != nil {
		return Fig7Result{}, err
	}
	for li, lvl := range levels {
		out.PerLevel[lvl] = perLevel[li]
		out.SDCurves[lvl] = sdCurves[li]
	}
	return out, nil
}

// ComponentsTable renders Fig 7b.
func (r Fig7Result) ComponentsTable() Table {
	t := Table{
		Title:  "Fig 7b: mean component times [ms] per acceleration level (30 concurrent users)",
		Header: []string{"level", "Tresponse", "T1", "routing", "T2", "Tcloud"},
	}
	levels := make([]int, 0, len(r.PerLevel))
	for lvl := range r.PerLevel {
		levels = append(levels, lvl)
	}
	sort.Ints(levels)
	for _, lvl := range levels {
		c := r.PerLevel[lvl]
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(lvl), f1(c.TotalMs), f1(c.T1Ms), f1(c.RoutingMs), f1(c.T2Ms), f1(c.TcloudMs),
		})
	}
	return t
}

// SDTable renders Fig 7c.
func (r Fig7Result) SDTable() Table {
	t := Table{
		Title:  "Fig 7c: response-time SD [ms] vs concurrent users per acceleration level",
		Header: []string{"users", "sd_L1", "sd_L2", "sd_L3", "sd_L4"},
	}
	if len(r.SDCurves[1]) == 0 {
		return t
	}
	for i := range r.SDCurves[1] {
		row := []string{strconv.Itoa(r.SDCurves[1][i].Users)}
		for lvl := 1; lvl <= 4; lvl++ {
			row = append(row, f1(r.SDCurves[lvl][i].SDMs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RatePoint is one Fig 8b/8c measurement window.
type RatePoint struct {
	Hz         float64
	MeanMs     float64
	SuccessPct float64
	FailPct    float64
	Arrived    int
}

// Fig8Result bundles the three Fig 8 panels.
type Fig8Result struct {
	// RoutingMeanMs / RoutingSDMs per acceleration group (Fig 8a).
	RoutingMeanMs map[int]float64
	RoutingSDMs   map[int]float64
	// RoutingSeries holds per-request routing samples per group for the
	// time-series plot.
	RoutingSeries map[int][]float64
	// Sweep is the arrival-rate doubling experiment on t2.large
	// (Fig 8b/8c).
	Sweep []RatePoint
	// SaturationHz is the last rate whose mean response stayed within
	// 3× the unloaded response (the paper finds 32 Hz).
	SaturationHz float64
}

// Fig8 measures the SDN routing overhead per group and stresses a
// t2.large with arrival rates doubling 1→1024 Hz.
func Fig8(s Scale) (Fig8Result, error) {
	out := Fig8Result{
		RoutingMeanMs: make(map[int]float64),
		RoutingSDMs:   make(map[int]float64),
		RoutingSeries: make(map[int][]float64),
	}
	// (a) Routing overhead per acceleration group.
	env := sim.NewEnvironment()
	rng := sim.NewRNG(s.Seed)
	accel, err := sdn.NewAccelerator(env, sdn.Config{RNG: rng.Stream("fig8a")})
	if err != nil {
		return Fig8Result{}, err
	}
	catalog := cloud.DefaultCatalog()
	small, err := catalog.ByName("t2.small")
	if err != nil {
		return Fig8Result{}, err
	}
	for g := 1; g <= 4; g++ {
		if _, err := sdn.BuildPool(env, accel, g, small, 1, qsim.Config{}); err != nil {
			return Fig8Result{}, err
		}
	}
	const perGroup = 250
	for i := 0; i < perGroup*4; i++ {
		g := 1 + i%4
		req := sdn.Request{UserID: i, Group: g, Work: 1000, BatteryLevel: 1}
		if err := accel.Route(req, func(o sdn.Outcome) {
			out.RoutingSeries[o.Group] = append(out.RoutingSeries[o.Group],
				float64(o.Routing)/float64(time.Millisecond))
		}); err != nil {
			return Fig8Result{}, err
		}
	}
	if err := env.Run(); err != nil {
		return Fig8Result{}, err
	}
	for g, w := range accel.RoutingStats() {
		out.RoutingMeanMs[g] = w.Mean()
		out.RoutingSDMs[g] = w.SD()
	}

	// (b)/(c) Arrival-rate sweep on one t2.large.
	sweepEnv := sim.NewEnvironment()
	inst, err := cloud.NewInstance("sweep-t2.large", mustType(catalog, "t2.large"), sweepEnv.Now())
	if err != nil {
		return Fig8Result{}, err
	}
	srv, err := qsim.NewServer(sweepEnv, inst, qsim.Config{})
	if err != nil {
		return Fig8Result{}, err
	}
	step := time.Duration(s.SweepStep) * time.Second
	// matmul(23) ≈ 12.2k work units: the t2.large serves ≈41 req/s, so
	// the paper's 32 Hz knee falls between the 32 and 64 Hz windows.
	sweepWork := tasks.MatMul{}.Work(23)
	reqs, err := workload.GenerateArrivalSweep(rng.Stream("fig8b"), sweepEnv.Now(), workload.ArrivalRateConfig{
		StartHz: 1, Steps: 11, Step: step,
		Pool:  tasks.DefaultPool(),
		Sizer: workload.FixedSizer{Size: 23}, FixedTask: "matmul",
	})
	if err != nil {
		return Fig8Result{}, err
	}
	type window struct {
		resp    stats.Welford
		arrived int
		dropped int
	}
	windows := make([]window, 11)
	for _, req := range reqs {
		idx := int(req.At.Sub(sim.Epoch) / step)
		if idx >= len(windows) {
			idx = len(windows) - 1
		}
		windows[idx].arrived++
		w := &windows[idx]
		if err := sweepEnv.ScheduleAt(req.At, func() {
			_ = srv.Submit(sweepWork, func(o qsim.Outcome) {
				if o.Dropped {
					w.dropped++
					return
				}
				w.resp.Add(float64(o.Latency) / float64(time.Millisecond))
			})
		}); err != nil {
			return Fig8Result{}, err
		}
	}
	if err := sweepEnv.Run(); err != nil {
		return Fig8Result{}, err
	}
	base := 0.0
	for i := range windows {
		hz := float64(int(1) << uint(i))
		w := &windows[i]
		completed := w.arrived - w.dropped
		point := RatePoint{
			Hz:      hz,
			MeanMs:  w.resp.Mean(),
			Arrived: w.arrived,
		}
		if w.arrived > 0 {
			point.SuccessPct = 100 * float64(completed) / float64(w.arrived)
			point.FailPct = 100 * float64(w.dropped) / float64(w.arrived)
		}
		out.Sweep = append(out.Sweep, point)
		if i == 0 {
			base = point.MeanMs
		}
		if base > 0 && point.MeanMs <= 3*base {
			out.SaturationHz = hz
		}
	}
	return out, nil
}

// RoutingTable renders Fig 8a.
func (r Fig8Result) RoutingTable() Table {
	t := Table{
		Title:  "Fig 8a: SDN-accelerator routing time per acceleration group",
		Header: []string{"group", "mean_ms", "sd_ms", "samples"},
	}
	gs := make([]int, 0, len(r.RoutingMeanMs))
	for g := range r.RoutingMeanMs {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	for _, g := range gs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("A%d", g), f1(r.RoutingMeanMs[g]), f1(r.RoutingSDMs[g]),
			strconv.Itoa(len(r.RoutingSeries[g])),
		})
	}
	return t
}

// SweepTable renders Fig 8b/8c.
func (r Fig8Result) SweepTable() Table {
	t := Table{
		Title: fmt.Sprintf("Fig 8b/8c: t2.large under doubling arrival rate (saturation ≈ %.0f Hz)",
			r.SaturationHz),
		Header: []string{"rate_hz", "mean_ms", "success_pct", "fail_pct", "arrived"},
	}
	for _, p := range r.Sweep {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", p.Hz), f1(p.MeanMs), f1(p.SuccessPct), f1(p.FailPct),
			strconv.Itoa(p.Arrived),
		})
	}
	return t
}

// mustType fetches a catalog type that is known to exist.
func mustType(c *cloud.Catalog, name string) cloud.InstanceType {
	t, err := c.ByName(name)
	if err != nil {
		panic(err)
	}
	return t
}
