// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): one function per figure, each returning a typed
// result with the same series the paper plots, plus text/CSV emitters
// used by cmd/accelsim and the root benchmark suite. The per-experiment
// index lives in DESIGN.md; paper-vs-measured numbers in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects experiment fidelity: Quick for unit tests and benches,
// Full for regenerating the figures at paper-equivalent sample sizes.
type Scale struct {
	// Name labels the scale in output.
	Name string
	// BenchWaves is the number of benchmark waves per load level
	// (the paper's 3-hour stress ≈ 180 one-minute waves).
	BenchWaves int
	// LoadLevels are the concurrent-user probes of Fig 4.
	LoadLevels []int
	// SweepStep is the per-rate window of Fig 8b (paper: 5 minutes).
	SweepStep int // seconds
	// StudyUsers is the Fig 9/10 workload size (paper: 100).
	StudyUsers int
	// StudyHours is the Fig 9 run length (paper: 8 h).
	StudyHours float64
	// HistoryHours is the Fig 10a trace length (paper: 16 h).
	HistoryHours int
	// NetSamples is the per-operator/tech sample count of Fig 11
	// (paper: 150k–500k).
	NetSamples int
	// Seed roots all randomness.
	Seed int64
	// Workers bounds the goroutines each experiment's sharded inner
	// loops may use (Fig 4's load levels, Fig 11's sample chunks, the
	// Fig 10 per-user history). Every shard owns a substream derived
	// from its identity alone, so results are bit-identical at any
	// value; <= 1 runs serially.
	Workers int
}

// Quick is the fast profile used by tests and `go test -bench`.
func Quick() Scale {
	return Scale{
		Name:         "quick",
		BenchWaves:   6,
		LoadLevels:   []int{1, 10, 20, 40, 60, 80, 100},
		SweepStep:    20,
		StudyUsers:   40,
		StudyHours:   2,
		HistoryHours: 18,
		NetSamples:   4000,
		Seed:         1,
	}
}

// Full is the paper-equivalent profile used by cmd/accelsim.
func Full() Scale {
	return Scale{
		Name:         "full",
		BenchWaves:   30,
		LoadLevels:   []int{1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		SweepStep:    60,
		StudyUsers:   100,
		StudyHours:   8,
		HistoryHours: 16,
		NetSamples:   60000,
		Seed:         1,
	}
}

// Table is a printable experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// WriteTSV emits the table as tab-separated values with a title comment.
func (t Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// f1, f2 format floats at one/two decimals for table cells.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// splitWorkers divides a worker budget between an outer fan-out of the
// given width and the loops nested inside it, so nesting never
// multiplies goroutines: each inner loop gets total/min(total, outer),
// at least 1. Worker counts never affect output, only scheduling.
func splitWorkers(total, outer int) int {
	if outer > total {
		outer = total
	}
	if outer < 1 {
		outer = 1
	}
	inner := total / outer
	if inner < 1 {
		inner = 1
	}
	return inner
}
