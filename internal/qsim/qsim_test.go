package qsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/sim"
)

func mustInstance(t *testing.T, name string) (*sim.Environment, *cloud.Instance) {
	t.Helper()
	env := sim.NewEnvironment()
	it, err := cloud.DefaultCatalog().ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cloud.NewInstance("i-test", it, env.Now())
	if err != nil {
		t.Fatal(err)
	}
	return env, inst
}

func TestSingleRequestLatency(t *testing.T) {
	env, inst := mustInstance(t, "t2.small")
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got Outcome
	// 100k work at 200k units/s = 500 ms.
	if err := srv.Submit(100_000, func(o Outcome) { got = o }); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 500 * time.Millisecond
	if got.Dropped || absDur(got.Latency-want) > time.Millisecond {
		t.Fatalf("latency = %v (dropped=%v), want ≈%v", got.Latency, got.Dropped, want)
	}
	if got.Waited != 0 {
		t.Fatalf("waited = %v, want 0", got.Waited)
	}
	st := srv.Stats()
	if st.Completed != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProcessorSharingTwoEqualRequests(t *testing.T) {
	env, inst := mustInstance(t, "t2.small")
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var done []Outcome
	for i := 0; i < 2; i++ {
		if err := srv.Submit(100_000, func(o Outcome) { done = append(done, o) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("completed %d, want 2", len(done))
	}
	// Two equal requests sharing one core both finish at 2× the solo
	// time: 1000 ms.
	for _, o := range done {
		if absDur(o.Latency-time.Second) > 2*time.Millisecond {
			t.Fatalf("latency = %v, want ≈1s", o.Latency)
		}
	}
}

func TestSerialTaskCapOnManyCores(t *testing.T) {
	// A single serial request cannot use more than one core: latency on a
	// 40-core box equals work / (speed × one core).
	env, inst := mustInstance(t, "m4.10xlarge")
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got Outcome
	if err := srv.Submit(200_000, func(o Outcome) { got = o }); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	it := inst.Type()
	want := time.Duration(200_000 / it.SingleTaskRate() * float64(time.Second))
	if absDur(got.Latency-want) > time.Millisecond {
		t.Fatalf("latency = %v, want ≈%v", got.Latency, want)
	}
}

func TestManyCoresServeBatchInParallel(t *testing.T) {
	// 40 equal requests on a 40-core box all run at full speed.
	env, inst := mustInstance(t, "m4.10xlarge")
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var latencies []time.Duration
	for i := 0; i < 40; i++ {
		if err := srv.Submit(200_000, func(o Outcome) { latencies = append(latencies, o.Latency) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(200_000 / inst.Type().SingleTaskRate() * float64(time.Second))
	for _, l := range latencies {
		if absDur(l-want) > time.Millisecond {
			t.Fatalf("latency = %v, want ≈%v (no contention)", l, want)
		}
	}
}

func TestBatchResponseGrowsWithLoadOnSmallInstance(t *testing.T) {
	// The Fig 4 premise: response time grows ~linearly in batch size on a
	// 1-core box and stays flat on a 40-core box until n > cores.
	mean := func(name string, n int) float64 {
		env, inst := mustInstance(t, name)
		srv, err := NewServer(env, inst, Config{})
		if err != nil {
			t.Fatal(err)
		}
		var total time.Duration
		count := 0
		for i := 0; i < n; i++ {
			if err := srv.Submit(2000, func(o Outcome) {
				total += o.Latency
				count++
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("completed %d/%d", count, n)
		}
		return float64(total) / float64(count) / float64(time.Millisecond)
	}
	nano1, nano100 := mean("t2.nano", 1), mean("t2.nano", 100)
	if nano100 < 50*nano1 {
		t.Fatalf("t2.nano: mean at 100 users %v ms should be ≈100× solo %v ms", nano100, nano1)
	}
	big1, big100 := mean("m4.10xlarge", 1), mean("m4.10xlarge", 100)
	if big100 > 4*big1 {
		t.Fatalf("m4.10xlarge: mean at 100 users %v ms should stay within ≈2.5× solo %v ms", big100, big1)
	}
}

func TestQueueingAndDrops(t *testing.T) {
	env, inst := mustInstance(t, "t2.small")
	srv, err := NewServer(env, inst, Config{MaxConcurrency: 1, QueueCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	var outcomes []Outcome
	record := func(o Outcome) { outcomes = append(outcomes, o) }
	if err := srv.Submit(100_000, record); err != nil {
		t.Fatal(err)
	}
	// No queue: the second concurrent request is dropped immediately.
	if err := srv.Submit(100_000, record); err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 1 || !outcomes[0].Dropped {
		t.Fatalf("second request should drop synchronously, outcomes=%v", outcomes)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Completed != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.SuccessRate(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("SuccessRate = %v, want 0.5", got)
	}
}

func TestQueuedRequestWaits(t *testing.T) {
	env, inst := mustInstance(t, "t2.small")
	srv, err := NewServer(env, inst, Config{MaxConcurrency: 1, QueueCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	var first, second Outcome
	if err := srv.Submit(100_000, func(o Outcome) { first = o }); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(100_000, func(o Outcome) { second = o }); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if first.Waited != 0 {
		t.Fatalf("first waited %v, want 0", first.Waited)
	}
	// Second waits for the first's full 500 ms, then runs alone 500 ms.
	if absDur(second.Waited-500*time.Millisecond) > 2*time.Millisecond {
		t.Fatalf("second waited %v, want ≈500ms", second.Waited)
	}
	if absDur(second.Latency-time.Second) > 2*time.Millisecond {
		t.Fatalf("second latency %v, want ≈1s", second.Latency)
	}
}

func TestCreditThrottlingSlowsService(t *testing.T) {
	env := sim.NewEnvironment()
	typ := cloud.InstanceType{
		Name: "tiny.burst", VCPU: 1, SpeedFactor: 1, ContentionFactor: 1,
		Burstable: true, BaselineUtil: 0.1,
		InitialCredits: 0.5, CreditRatePerHour: 0, MaxCredits: 10,
	}
	inst, err := cloud.NewInstance("i-b", typ, env.Now())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 0.5 credits = 30 vCPU-seconds of burst. A 40-second job (8M work at
	// 200k/s) runs 30 s at full speed, then the remaining 10 s of work at
	// 10% speed = 100 s. Total ≈ 130 s.
	var got Outcome
	if err := srv.Submit(8_000_000, func(o Outcome) { got = o }); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 130 * time.Second
	if absDur(got.Latency-want) > 2*time.Second {
		t.Fatalf("latency = %v, want ≈%v (burst then baseline)", got.Latency, want)
	}
	if !inst.Throttled() {
		t.Fatal("instance should be throttled at completion")
	}
}

func TestSubmitValidation(t *testing.T) {
	env, inst := mustInstance(t, "t2.small")
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(0, func(Outcome) {}); err == nil {
		t.Fatal("zero work should fail")
	}
	if err := srv.Submit(math.NaN(), func(Outcome) {}); err == nil {
		t.Fatal("NaN work should fail")
	}
	if err := srv.Submit(1, nil); err == nil {
		t.Fatal("nil callback should fail")
	}
}

func TestNewServerValidation(t *testing.T) {
	env, inst := mustInstance(t, "t2.small")
	if _, err := NewServer(nil, inst, Config{}); err == nil {
		t.Fatal("nil env should fail")
	}
	if _, err := NewServer(env, nil, Config{}); err == nil {
		t.Fatal("nil instance should fail")
	}
	if _, err := NewServer(env, inst, Config{MaxConcurrency: -1}); err == nil {
		t.Fatal("negative MaxConcurrency should fail")
	}
}

func TestUtilizationAndCounts(t *testing.T) {
	env, inst := mustInstance(t, "t2.medium") // 2 cores
	srv, err := NewServer(env, inst, Config{MaxConcurrency: 2, QueueCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Utilization() != 0 {
		t.Fatal("idle utilization should be 0")
	}
	for i := 0; i < 3; i++ {
		if err := srv.Submit(1000, func(Outcome) {}); err != nil {
			t.Fatal(err)
		}
	}
	if srv.ActiveCount() != 2 || srv.QueueLen() != 1 {
		t.Fatalf("active/queue = %d/%d, want 2/1", srv.ActiveCount(), srv.QueueLen())
	}
	if got := srv.Utilization(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("utilization = %v, want 1.0", got)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.ActiveCount() != 0 || srv.QueueLen() != 0 {
		t.Fatal("server should drain")
	}
}

// Property: every submitted request is accounted exactly once, latencies
// are non-negative, and equal works submitted together finish together.
func TestAccountingProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		env, it := sim.NewEnvironment(), cloud.DefaultCatalog()
		typ, err := it.ByName("t2.large")
		if err != nil {
			return false
		}
		inst, err := cloud.NewInstance("i-p", typ, env.Now())
		if err != nil {
			return false
		}
		srv, err := NewServer(env, inst, Config{MaxConcurrency: 8, QueueCapacity: 8})
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed).Stream("works")
		results := 0
		for i := 0; i < n; i++ {
			err := srv.Submit(100+rng.Float64()*10_000, func(o Outcome) {
				results++
				if !o.Dropped && (o.Latency < 0 || o.Waited < 0 || o.Service < 0) {
					results = -1 << 30
				}
			})
			if err != nil {
				return false
			}
		}
		if err := env.Run(); err != nil {
			return false
		}
		st := srv.Stats()
		return results == n && st.Completed+st.Dropped == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
