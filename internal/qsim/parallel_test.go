package qsim

import (
	"math"
	"testing"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/sim"
)

// A parallel request on a big instance uses its full core cap: 8-way
// parallel work finishes ≈8× faster than serial.
func TestParallelRequestSpeedup(t *testing.T) {
	env, inst := mustInstance(t, "m4.10xlarge")
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var serial, parallel Outcome
	if err := srv.Submit(800_000, func(o Outcome) { serial = o }); err != nil {
		t.Fatal(err)
	}
	if err := srv.SubmitParallel(800_000, 8, func(o Outcome) { parallel = o }); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	speedup := float64(serial.Latency) / float64(parallel.Latency)
	if math.Abs(speedup-8) > 0.2 {
		t.Fatalf("speedup = %.2f, want ≈8 (serial %v, parallel %v)",
			speedup, serial.Latency, parallel.Latency)
	}
}

// On a single-core instance, parallelism buys nothing — the §VII-1
// acceleration limit seen from the other side.
func TestParallelRequestNoGainOnSmallInstance(t *testing.T) {
	env, inst := mustInstance(t, "t2.small")
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got Outcome
	if err := srv.SubmitParallel(100_000, 8, func(o Outcome) { got = o }); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 500 * time.Millisecond
	if absDur(got.Latency-want) > 2*time.Millisecond {
		t.Fatalf("latency = %v, want ≈%v (1 core available)", got.Latency, want)
	}
}

// Water-filling: a serial and a parallel request share a 2-core box;
// the serial one gets its single core, the parallel one the remainder.
func TestWaterFillingShares(t *testing.T) {
	env, inst := mustInstance(t, "t2.medium") // 2 cores, speed 1.25
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	single := inst.Type().SingleTaskRate()
	var serial, parallel Outcome
	// Serial: 1 core → work/single seconds if undisturbed.
	if err := srv.Submit(single, func(o Outcome) { serial = o }); err != nil {
		t.Fatal(err)
	}
	// Parallel (cap 4): gets the other core only.
	if err := srv.SubmitParallel(single, 4, func(o Outcome) { parallel = o }); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Both should take ≈1 s: each got exactly one core.
	for _, o := range []Outcome{serial, parallel} {
		if absDur(o.Latency-time.Second) > 5*time.Millisecond {
			t.Fatalf("latency = %v, want ≈1s", o.Latency)
		}
	}
}

// A parallel request yields cores to later serial arrivals (max-min
// fairness, not starvation).
func TestParallelYieldsUnderContention(t *testing.T) {
	env, inst := mustInstance(t, "m4.10xlarge") // 40 cores
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	single := inst.Type().SingleTaskRate()
	// 36 serial requests + one 8-way parallel request: 36 + 8 = 44 > 40.
	// Water-filling: serial want 1 each; fair share after serial = 4/1?
	// Round 1: fair = 40/37 ≈ 1.08 → serial get 1 each (36 used),
	// parallel gets remaining 4.
	var parallelOutcome Outcome
	completed := 0
	for i := 0; i < 36; i++ {
		if err := srv.Submit(single*10, func(Outcome) { completed++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.SubmitParallel(single*10, 8, func(o Outcome) { parallelOutcome = o }); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if completed != 36 {
		t.Fatalf("completed %d/36 serial requests", completed)
	}
	// The parallel request ran at 4 cores while serial ones were active
	// (10/4 = 2.5 s), then finished the rest at up to 8 cores; it must
	// land between 10/8 s (full parallelism) and 10 s (one core).
	if parallelOutcome.Latency < 1250*time.Millisecond || parallelOutcome.Latency > 10*time.Second {
		t.Fatalf("parallel latency = %v outside plausible band", parallelOutcome.Latency)
	}
}

func TestSubmitParallelValidation(t *testing.T) {
	env, inst := mustInstance(t, "t2.small")
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SubmitParallel(100, 0, func(Outcome) {}); err == nil {
		t.Fatal("parallelism 0 should fail")
	}
	_ = cloud.RefCoreRate
	_ = sim.Epoch
}
