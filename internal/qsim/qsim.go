// Package qsim simulates a cloud server executing offloaded tasks under
// processor sharing, the service discipline of the paper's Dalvik-x86
// surrogate (one dalvikvm process per in-flight request, §V). It produces
// the response-time-versus-load curves of Fig 4–6, the saturation and
// drop behaviour of Fig 8b/8c, and the service times behind Fig 9/10.
//
// Model: at any instant the active requests share the instance's
// effective cores equally, with a single request capped at one core (the
// pool's tasks are serial; §VII-1). Admission is bounded by a process
// slot limit; a bounded FIFO queue holds the overflow and further
// arrivals are dropped — the failure mode of Fig 8c.
package qsim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
)

// DefaultMaxConcurrency bounds simultaneous dalvikvm processes per server.
const DefaultMaxConcurrency = 256

// DefaultQueueCapacity bounds the accept queue of a server.
const DefaultQueueCapacity = 512

// Outcome describes the fate of one submitted request.
type Outcome struct {
	// Dropped is true when the server rejected the request (slots and
	// queue full).
	Dropped bool
	// Waited is the time spent queued before entering service.
	Waited time.Duration
	// Service is the time spent in processor sharing.
	Service time.Duration
	// Latency = Waited + Service (0 when dropped).
	Latency time.Duration
}

// Config tunes a simulated server.
type Config struct {
	// MaxConcurrency is the number of requests served simultaneously
	// (dalvikvm process slots). Zero selects DefaultMaxConcurrency.
	MaxConcurrency int
	// QueueCapacity is the waiting-room size. Zero selects
	// DefaultQueueCapacity; negative means "no queue" (immediate drops
	// beyond MaxConcurrency).
	QueueCapacity int
}

func (c Config) withDefaults() (Config, error) {
	if c.MaxConcurrency == 0 {
		c.MaxConcurrency = DefaultMaxConcurrency
	}
	if c.MaxConcurrency < 0 {
		return c, fmt.Errorf("qsim: MaxConcurrency %d < 0", c.MaxConcurrency)
	}
	if c.QueueCapacity == 0 {
		c.QueueCapacity = DefaultQueueCapacity
	}
	if c.QueueCapacity < 0 {
		c.QueueCapacity = 0
	}
	return c, nil
}

type request struct {
	remaining float64
	// cores caps how many cores this request can exploit (1 for the
	// serial pool tasks; >1 for parallelized code, the §VII-1
	// extension).
	cores   int
	arrived time.Time
	started time.Time
	done    func(Outcome)
}

// Stats aggregates a server's lifetime counters.
type Stats struct {
	Completed int
	Dropped   int
	// Response accumulates completed-request latencies in milliseconds.
	Response stats.Welford
}

// SuccessRate reports completed / (completed + dropped), 1 when idle.
func (s Stats) SuccessRate() float64 {
	total := s.Completed + s.Dropped
	if total == 0 {
		return 1
	}
	return float64(s.Completed) / float64(total)
}

// Server is one simulated instance executing offloaded work.
type Server struct {
	env  *sim.Environment
	inst *cloud.Instance
	cfg  Config

	active []*request
	queue  []*request

	lastUpdate time.Time
	generation uint64 // invalidates stale scheduled wake-ups

	stats Stats
}

// NewServer wraps a launched instance in a simulation server.
func NewServer(env *sim.Environment, inst *cloud.Instance, cfg Config) (*Server, error) {
	if env == nil {
		return nil, errors.New("qsim: nil environment")
	}
	if inst == nil {
		return nil, errors.New("qsim: nil instance")
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Server{env: env, inst: inst, cfg: c, lastUpdate: env.Now()}, nil
}

// Instance exposes the underlying instance.
func (s *Server) Instance() *cloud.Instance { return s.inst }

// Stats returns a copy of the lifetime counters.
func (s *Server) Stats() Stats { return s.stats }

// ActiveCount reports requests currently in service.
func (s *Server) ActiveCount() int { return len(s.active) }

// QueueLen reports requests waiting for a slot.
func (s *Server) QueueLen() int { return len(s.queue) }

// Utilization reports busy cores / total cores at this instant.
func (s *Server) Utilization() float64 {
	if len(s.active) == 0 {
		return 0
	}
	_, used := s.shares()
	return used / float64(s.inst.Type().VCPU)
}

// Submit offers a serial request of the given work size. done is invoked
// exactly once — immediately (same event) on drop, or at completion time.
func (s *Server) Submit(work float64, done func(Outcome)) error {
	return s.SubmitParallel(work, 1, done)
}

// SubmitParallel offers a request whose code can exploit up to `cores`
// virtual cores (the §VII-1 code-parallelization extension: "this limit
// can be surpassed by applying techniques of code parallelization").
// Cores are shared max-min fairly: a parallel request receives up to its
// cap when the machine has spare cores and degrades gracefully under
// contention.
func (s *Server) SubmitParallel(work float64, cores int, done func(Outcome)) error {
	if work <= 0 || math.IsNaN(work) || math.IsInf(work, 0) {
		return fmt.Errorf("qsim: invalid work %v", work)
	}
	if cores < 1 {
		return fmt.Errorf("qsim: parallelism %d < 1", cores)
	}
	if done == nil {
		return errors.New("qsim: nil completion callback")
	}
	s.progress()
	req := &request{remaining: work, cores: cores, arrived: s.env.Now(), done: done}
	switch {
	case len(s.active) < s.cfg.MaxConcurrency:
		req.started = s.env.Now()
		s.active = append(s.active, req)
	case len(s.queue) < s.cfg.QueueCapacity:
		s.queue = append(s.queue, req)
	default:
		s.stats.Dropped++
		done(Outcome{Dropped: true})
		return nil
	}
	s.reschedule()
	return nil
}

// shares computes the max-min fair core allocation across the active
// set: every request wants up to its core cap; spare capacity left by
// small requests is redistributed (water-filling). The returned slice is
// parallel to s.active; the second result is the total cores in use.
func (s *Server) shares() ([]float64, float64) {
	n := len(s.active)
	if n == 0 {
		return nil, 0
	}
	out := make([]float64, n)
	capacity := s.inst.EffectiveCores()
	unsat := make([]int, 0, n)
	for i := range s.active {
		unsat = append(unsat, i)
	}
	remaining := capacity
	for len(unsat) > 0 && remaining > 1e-12 {
		fair := remaining / float64(len(unsat))
		progressed := false
		next := unsat[:0]
		for _, i := range unsat {
			want := float64(s.active[i].cores)
			if want <= fair+1e-12 {
				out[i] = want
				remaining -= want
				progressed = true
				continue
			}
			next = append(next, i)
		}
		unsat = next
		if !progressed {
			// Every remaining request wants more than the fair share:
			// split evenly and stop.
			for _, i := range unsat {
				out[i] = fair
			}
			remaining = 0
			break
		}
	}
	used := 0.0
	for _, v := range out {
		used += v
	}
	if used > capacity {
		used = capacity
	}
	return out, used
}

// progress applies elapsed virtual time to the active set and the credit
// balance. Rates are piecewise constant between events; reschedule caps
// the interval so that credit depletion points become events too.
func (s *Server) progress() {
	now := s.env.Now()
	dt := now.Sub(s.lastUpdate)
	if dt <= 0 {
		return
	}
	shares, cores := s.shares()
	if len(shares) > 0 {
		single := s.inst.Type().SingleTaskRate()
		sec := dt.Seconds()
		for i, r := range s.active {
			r.remaining -= shares[i] * single * sec
			if r.remaining < 0 {
				r.remaining = 0
			}
		}
	}
	// Advancing forward in virtual time cannot fail.
	_ = s.inst.Advance(now, cores)
	s.lastUpdate = now
	s.completeFinished()
}

// completeFinished pops every request whose work has reached zero and
// refills slots from the queue.
func (s *Server) completeFinished() {
	now := s.env.Now()
	remaining := s.active[:0]
	for _, r := range s.active {
		if r.remaining <= 1e-9 {
			s.stats.Completed++
			out := Outcome{
				Waited:  r.started.Sub(r.arrived),
				Service: now.Sub(r.started),
			}
			out.Latency = out.Waited + out.Service
			s.stats.Response.Add(float64(out.Latency) / float64(time.Millisecond))
			r.done(out)
			continue
		}
		remaining = append(remaining, r)
	}
	s.active = remaining
	for len(s.active) < s.cfg.MaxConcurrency && len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		next.started = now
		s.active = append(s.active, next)
	}
}

// reschedule plans the next wake-up: the earliest of (a) the first
// completion at current rates, and (b) the credit-depletion instant, at
// which the rates change.
func (s *Server) reschedule() {
	s.generation++
	gen := s.generation
	if len(s.active) == 0 {
		return
	}
	shares, _ := s.shares()
	single := s.inst.Type().SingleTaskRate()
	wake := math.Inf(1) // seconds until first completion
	for i, r := range s.active {
		rate := shares[i] * single
		if rate <= 0 {
			continue
		}
		if t := r.remaining / rate; t < wake {
			wake = t
		}
	}
	if math.IsInf(wake, 1) {
		return
	}
	if d := s.creditHorizon(); d > 0 && d < wake {
		wake = d
	}
	delay := time.Duration(wake * float64(time.Second))
	if delay < time.Nanosecond {
		delay = time.Nanosecond
	}
	// Scheduling forward from now cannot fail.
	_ = s.env.Schedule(delay, func() {
		if s.generation != gen {
			return // superseded by a later arrival/completion
		}
		s.progress()
		s.reschedule()
	})
}

// creditHorizon estimates seconds until the credit balance empties under
// the current usage, or 0 when it never does.
func (s *Server) creditHorizon() float64 {
	t := s.inst.Type()
	if !t.Burstable || s.inst.Throttled() {
		return 0
	}
	_, cores := s.shares()
	usagePerSec := cores / 60.0 // vCPU-minutes per second
	accrualPerSec := t.CreditRatePerHour / 3600.0
	net := usagePerSec - accrualPerSec
	if net <= 0 {
		return 0
	}
	return s.inst.Credits() / net
}
