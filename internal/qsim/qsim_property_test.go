package qsim

import (
	"testing"
	"testing/quick"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/sim"
)

// Work conservation: on a non-burstable single-speed instance, the sum of
// completed work divided by the total rate lower-bounds the makespan, and
// an idle-free batch achieves it exactly.
func TestBatchMakespanMatchesCapacity(t *testing.T) {
	env := sim.NewEnvironment()
	typ := cloud.InstanceType{Name: "flat", VCPU: 4, SpeedFactor: 1, ContentionFactor: 1}
	inst, err := cloud.NewInstance("i-flat", typ, env.Now())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(env, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 16 equal requests of 100k work on 4 cores at 200k/s:
	// total work 1.6M, total rate 800k/s -> makespan exactly 2 s.
	var last time.Duration
	for i := 0; i < 16; i++ {
		if err := srv.Submit(100_000, func(o Outcome) {
			if o.Latency > last {
				last = o.Latency
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if absDur(last-2*time.Second) > 5*time.Millisecond {
		t.Fatalf("makespan = %v, want ≈2s (work conservation)", last)
	}
}

// Property: random mixes of serial and parallel requests on a flat
// instance all complete, never negative latency, and the makespan is at
// least totalWork / totalRate (no machine can beat work conservation).
func TestMakespanLowerBoundProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%24 + 1
		env := sim.NewEnvironment()
		typ := cloud.InstanceType{Name: "flat", VCPU: 8, SpeedFactor: 1, ContentionFactor: 1}
		inst, err := cloud.NewInstance("i-p", typ, env.Now())
		if err != nil {
			return false
		}
		srv, err := NewServer(env, inst, Config{})
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed).Stream("mix")
		totalWork := 0.0
		var makespan time.Duration
		completed := 0
		for i := 0; i < n; i++ {
			work := 1000 + rng.Float64()*200_000
			cores := 1 + rng.Intn(4)
			totalWork += work
			err := srv.SubmitParallel(work, cores, func(o Outcome) {
				completed++
				if o.Latency < 0 {
					completed = -1 << 30
				}
				if o.Latency > makespan {
					makespan = o.Latency
				}
			})
			if err != nil {
				return false
			}
		}
		if err := env.Run(); err != nil {
			return false
		}
		if completed != n {
			return false
		}
		bound := time.Duration(totalWork / typ.TotalRate() * float64(time.Second))
		return makespan >= bound-time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Saturated server with a bounded queue: accounting stays exact and the
// drop pattern is all-or-nothing per arrival (no lost callbacks), the
// Fig 8c failure mode.
func TestSaturationDropAccounting(t *testing.T) {
	env, inst := mustInstance(t, "t2.small")
	srv, err := NewServer(env, inst, Config{MaxConcurrency: 2, QueueCapacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	results := 0
	drops := 0
	for i := 0; i < n; i++ {
		if err := srv.Submit(50_000, func(o Outcome) {
			results++
			if o.Dropped {
				drops++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if results != n {
		t.Fatalf("callbacks %d, want %d", results, n)
	}
	// 2 in service + 3 queued admitted at t=0; the rest dropped, then
	// queue drains and nothing else arrives.
	if drops != n-5 {
		t.Fatalf("drops = %d, want %d", drops, n-5)
	}
	st := srv.Stats()
	if st.Completed != 5 || st.Dropped != n-5 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.SuccessRate(); got <= 0 || got >= 1 {
		t.Fatalf("success rate = %v", got)
	}
}

// FIFO queue order: queued requests start in arrival order.
func TestQueueFIFO(t *testing.T) {
	env, inst := mustInstance(t, "t2.small")
	srv, err := NewServer(env, inst, Config{MaxConcurrency: 1, QueueCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := srv.Submit(10_000, func(Outcome) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("completion order = %v, want FIFO", order)
		}
	}
}
