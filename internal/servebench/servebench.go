// Package servebench measures the serving layer (internal/serve) end
// to end against hermetic clusters and emits the BENCH_serve.json
// artifact cmd/benchdiff gates:
//
//   - Batching A/B: a closed loop of homogeneous matmul offloads
//     against the same single-backend cluster with and without dynamic
//     batching. Every backend HTTP call pays an injected fixed RTT
//     (loopback round trips are free; the injection models the
//     cloud-internal hop that batching actually amortizes), so the
//     gated speedup — one ExecuteBatch round trip carrying MaxBatch
//     states versus one round trip each — is a wide, machine-portable
//     ratio that must clear a 2× floor.
//   - Backpressure hold: a healthy backend next to one crippled with
//     an injected per-execute delay, both behind small admission
//     queues. The crippled backend saturates and sheds; the gate is
//     that the healthy backend's p99 (sliced per server) holds within
//     20% of a healthy-only baseline run of the same load, and that at
//     least one request was rejected with the typed queue-full signal
//     instead of melting the stack.
//   - Scale-to-zero: a front-end with a cold pool under an autoscale
//     controller. The sole backend is parked, one request reactivates
//     it (paying the configured cold start), and the controller's next
//     decision must show exactly one activation whose cost lands in
//     the decision digest — gated for exact reproduction.
//
// Scenarios A and B are wall-clock measurements (machine-dependent, so
// the gates are ratios measured within one run); scenario C is
// deterministic and gated exactly.
package servebench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accelcloud/internal/autoscale"
	"accelcloud/internal/loadgen"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sdn"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
	"accelcloud/internal/trace"
)

// Schema versions the servebench report format for cmd/benchdiff.
const Schema = "accelcloud/servebench/v1"

// Config sizes one servebench run.
type Config struct {
	// Seed roots the deterministic task-state streams.
	Seed int64
	// Requests per measured cell (0 selects 400).
	Requests int
	// Workers is the closed-loop concurrency (0 selects 32).
	Workers int
	// MatMulSize is the n of the homogeneous n×n matmul workload (0
	// selects 8 — small enough that protocol overhead, not arithmetic,
	// dominates, which is the regime batching accelerates).
	MatMulSize int
	// Timeout bounds each request (0 selects 30s).
	Timeout time.Duration
}

func (c Config) normalized() Config {
	if c.Requests <= 0 {
		c.Requests = 400
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.MatMulSize <= 0 {
		c.MatMulSize = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Report is the BENCH_serve.json artifact.
type Report struct {
	Schema   string `json:"schema"`
	Seed     int64  `json:"seed"`
	Requests int    `json:"requests"`
	Workers  int    `json:"workers"`

	// Batching A/B (scenario A).
	UnbatchedThroughputRps float64 `json:"unbatchedThroughputRps"`
	BatchedThroughputRps   float64 `json:"batchedThroughputRps"`
	BatchSpeedup           float64 `json:"batchSpeedup"`
	UnbatchedP99Ms         float64 `json:"unbatchedP99Ms"`
	BatchedP99Ms           float64 `json:"batchedP99Ms"`

	// Backpressure hold (scenario B).
	BaselineP99Ms        float64 `json:"baselineP99Ms"`
	SaturatedStableP99Ms float64 `json:"saturatedStableP99Ms"`
	SaturatedHoldRatio   float64 `json:"saturatedHoldRatio"`
	QueueFullRejections  int64   `json:"queueFullRejections"`

	// Scale-to-zero (scenario C) — deterministic.
	ColdActivations int     `json:"coldActivations"`
	ColdStartMs     float64 `json:"coldStartMs"`
	ColdRequestMs   float64 `json:"coldRequestMs"`
	DecisionDigest  string  `json:"decisionDigest"`
}

// Summary renders the human-readable table.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "servebench: %d requests per cell, %d workers\n", r.Requests, r.Workers)
	fmt.Fprintf(&b, "  batching A/B (homogeneous matmul, single backend):\n")
	fmt.Fprintf(&b, "    unbatched  %9.0f rps  p99 %8.2f ms\n", r.UnbatchedThroughputRps, r.UnbatchedP99Ms)
	fmt.Fprintf(&b, "    batched    %9.0f rps  p99 %8.2f ms  (%.2fx throughput)\n", r.BatchedThroughputRps, r.BatchedP99Ms, r.BatchSpeedup)
	fmt.Fprintf(&b, "  backpressure hold (one crippled backend):\n")
	fmt.Fprintf(&b, "    healthy-backend p99 %8.2f ms vs baseline %8.2f ms (hold ratio %.2f)\n",
		r.SaturatedStableP99Ms, r.BaselineP99Ms, r.SaturatedHoldRatio)
	fmt.Fprintf(&b, "    queue-full rejections %d\n", r.QueueFullRejections)
	fmt.Fprintf(&b, "  scale-to-zero: %d activation(s), cold start %.0f ms, activating request %.2f ms\n",
		r.ColdActivations, r.ColdStartMs, r.ColdRequestMs)
	fmt.Fprintf(&b, "    decision digest %s\n", r.DecisionDigest)
	return b.String()
}

// WriteFile writes the JSON report.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport parses a report and verifies its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("servebench: decode report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("servebench: schema %q, want %q", rep.Schema, Schema)
	}
	return &rep, nil
}

// ReadReportFile parses a report file.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	return ReadReport(f)
}

// states pre-generates n deterministic matmul states so the measured
// loop does no generation work.
func states(seed int64, n, size int) ([]tasks.State, error) {
	gen := sim.NewRNG(seed).Stream("servebench-gen")
	out := make([]tasks.State, n)
	for i := range out {
		st, err := tasks.MatMul{}.Generate(gen, size)
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// drive replays sts against baseURL with a closed loop of workers and
// returns wall time, the latency histogram of successful requests, the
// per-server success histograms, and the queue-full rejection count.
// Any other error aborts the run — these scenarios are supposed to be
// error-free apart from intentional backpressure.
func drive(ctx context.Context, baseURL string, workers int, timeout time.Duration, sts []tasks.State) (time.Duration, *stats.LogHist, map[string]*stats.LogHist, int64, error) {
	client := rpc.NewClient(baseURL, rpc.WithTimeout(timeout))
	var (
		next      atomic.Int64
		rejected  atomic.Int64
		mu        sync.Mutex
		hist      = stats.NewLatencyHist()
		byServer  = map[string]*stats.LogHist{}
		wg        sync.WaitGroup
		runErr    error
		wallStart = time.Now()
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(sts) || ctx.Err() != nil {
					return
				}
				start := time.Now()
				resp, err := client.Offload(ctx, rpc.OffloadRequest{
					UserID: w, Group: 1, BatteryLevel: 0.9, State: sts[i],
				})
				ms := float64(time.Since(start)) / float64(time.Millisecond)
				switch {
				case err == nil:
					mu.Lock()
					hist.Add(ms)
					sh := byServer[resp.Server]
					if sh == nil {
						sh = stats.NewLatencyHist()
						byServer[resp.Server] = sh
					}
					sh.Add(ms)
					mu.Unlock()
				case rpc.IsQueueFull(err):
					rejected.Add(1)
				default:
					mu.Lock()
					if runErr == nil {
						runErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(wallStart)
	if runErr != nil {
		return 0, nil, nil, 0, runErr
	}
	return wall, hist, byServer, rejected.Load(), nil
}

func p99(h *stats.LogHist) float64 {
	if h == nil || h.Total() == 0 {
		return 0
	}
	v, err := h.Quantile(0.99)
	if err != nil {
		return 0
	}
	return v
}

// delayWrap injects a fixed per-call delay into the execute endpoints
// of each named surrogate — the stand-in for network RTT (scenario A)
// and for a crippled backend (scenario B). The delay is per HTTP call,
// so a batch round trip pays it once for the whole batch, exactly like
// a real network hop.
func delayWrap(delays map[string]time.Duration) func(string, http.Handler) http.Handler {
	return func(id string, h http.Handler) http.Handler {
		delay := delays[id]
		if delay <= 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == rpc.PathExecute || r.URL.Path == rpc.PathExecuteBatch {
				time.Sleep(delay)
			}
			h.ServeHTTP(w, r)
		})
	}
}

// backendRTT is the injected front-end→surrogate round-trip cost of
// scenario A. Loopback calls are nearly free, which would reduce the
// A/B to a CPU-overhead contest; a fixed wall-clock RTT restores the
// regime the serving layer is built for, where the per-call hop
// dominates and coalescing MaxBatch states into one round trip pays
// off proportionally.
const backendRTT = 5 * time.Millisecond

// runBatchingAB measures scenario A: the same cluster shape, queue-only
// versus queue+batching, same deterministic workload.
func runBatchingAB(ctx context.Context, cfg Config, rep *Report) error {
	sts, err := states(cfg.Seed, cfg.Requests, cfg.MatMulSize)
	if err != nil {
		return err
	}
	// Both cells run one admission slot (QueueLimit 1) so the closed
	// loop builds a real backlog; the only difference is whether the
	// dispatcher may coalesce that backlog into ExecuteBatch calls.
	cell := func(maxBatch int) (float64, float64, error) {
		cluster, err := loadgen.StartClusterContext(ctx, loadgen.ClusterConfig{
			Groups:             1,
			SurrogatesPerGroup: 1,
			MaxProcs:           cfg.Workers,
			QueueLimit:         1,
			QueueDepth:         256,
			MaxBatch:           maxBatch,
			Linger:             2 * time.Millisecond,
			WrapBackend:        delayWrap(map[string]time.Duration{"surrogate-g1-0": backendRTT}),
		})
		if err != nil {
			return 0, 0, err
		}
		defer cluster.Close()
		// Warmup fills connection pools outside the measured window.
		warm := sts[:min(len(sts), cfg.Workers)]
		if _, _, _, _, err := drive(ctx, cluster.URL(), cfg.Workers, cfg.Timeout, warm); err != nil {
			return 0, 0, err
		}
		wall, hist, _, _, err := drive(ctx, cluster.URL(), cfg.Workers, cfg.Timeout, sts)
		if err != nil {
			return 0, 0, err
		}
		return float64(len(sts)) / wall.Seconds(), p99(hist), nil
	}
	if rep.UnbatchedThroughputRps, rep.UnbatchedP99Ms, err = cell(0); err != nil {
		return fmt.Errorf("unbatched cell: %w", err)
	}
	if rep.BatchedThroughputRps, rep.BatchedP99Ms, err = cell(8); err != nil {
		return fmt.Errorf("batched cell: %w", err)
	}
	if rep.UnbatchedThroughputRps > 0 {
		rep.BatchSpeedup = rep.BatchedThroughputRps / rep.UnbatchedThroughputRps
	}
	return nil
}

// runBackpressure measures scenario B. The baseline is one healthy
// backend serving the full load; the measured run adds a crippled
// backend next to it. Because the crippled backend saturates its
// admission queue and gets fenced out of Pick, the healthy backend
// should see essentially the baseline's load — its p99 must hold
// within the gate's 20% of the healthy-only run, and the shed traffic
// must surface as typed queue-full rejections, not as timeouts or
// errors. Both cells inject the same base service delay so the
// latencies are queue-and-sleep dominated rather than scheduler noise.
func runBackpressure(ctx context.Context, cfg Config, rep *Report) error {
	sts, err := states(cfg.Seed+1, cfg.Requests, cfg.MatMulSize)
	if err != nil {
		return err
	}
	const (
		healthyName = "surrogate-g1-0"
		slowName    = "surrogate-g1-1"
		baseDelay   = 10 * time.Millisecond
		crippleBy   = 40 * time.Millisecond
		queueLimit  = 2
		queueDepth  = 4
	)
	// Saturation requires the offered concurrency to exceed the whole
	// cell's admission capacity (backends × (limit + depth)), or the
	// queues never fill and the scenario measures nothing.
	workers := max(cfg.Workers, 2*(queueLimit+queueDepth)+4)
	cell := func(surrogates int, delays map[string]time.Duration) (map[string]*stats.LogHist, int64, error) {
		cluster, err := loadgen.StartClusterContext(ctx, loadgen.ClusterConfig{
			Groups:             1,
			SurrogatesPerGroup: surrogates,
			MaxProcs:           workers,
			QueueLimit:         queueLimit,
			QueueDepth:         queueDepth,
			WrapBackend:        delayWrap(delays),
		})
		if err != nil {
			return nil, 0, err
		}
		defer cluster.Close()
		warm := sts[:min(len(sts), workers)]
		if _, _, _, _, err := drive(ctx, cluster.URL(), workers, cfg.Timeout, warm); err != nil {
			return nil, 0, err
		}
		_, _, byServer, rejected, err := drive(ctx, cluster.URL(), workers, cfg.Timeout, sts)
		return byServer, rejected, err
	}

	baseServers, _, err := cell(1, map[string]time.Duration{healthyName: baseDelay})
	if err != nil {
		return fmt.Errorf("baseline cell: %w", err)
	}
	rep.BaselineP99Ms = p99(baseServers[healthyName])

	slowServers, rejected, err := cell(2, map[string]time.Duration{
		healthyName: baseDelay,
		slowName:    baseDelay + crippleBy,
	})
	if err != nil {
		return fmt.Errorf("saturated cell: %w", err)
	}
	rep.SaturatedStableP99Ms = p99(slowServers[healthyName])
	rep.QueueFullRejections = rejected
	if rep.BaselineP99Ms > 0 {
		rep.SaturatedHoldRatio = rep.SaturatedStableP99Ms / rep.BaselineP99Ms
	}
	return nil
}

// runScaleToZero measures scenario C: park the sole backend, let one
// request reactivate it, and capture the controller decision that
// bills the activation. Everything here is deterministic: same seed,
// same activation count, same digest.
func runScaleToZero(ctx context.Context, cfg Config, rep *Report) error {
	const coldStart = 25 * time.Millisecond
	fe, err := sdn.New(
		sdn.WithColdPool(50*time.Millisecond, coldStart),
		sdn.WithQueue(2, 16),
	)
	if err != nil {
		return err
	}
	ctrl, err := autoscale.New(autoscale.Config{
		FrontEnd:    fe,
		Provisioner: &autoscale.HermeticProvisioner{},
		Groups: []autoscale.GroupSpec{
			{Group: 1, TypeName: "t2.nano", CostPerHour: 0.0063, Capacity: 8},
		},
		SlotLen: time.Second,
	})
	if err != nil {
		return err
	}
	defer ctrl.Shutdown()
	if err := ctrl.Prime(ctx); err != nil {
		return err
	}
	sts, err := states(cfg.Seed+2, 4, cfg.MatMulSize)
	if err != nil {
		return err
	}
	offload := func(st tasks.State) (time.Duration, error) {
		start := time.Now()
		resp, code := fe.Offload(ctx, rpc.OffloadRequest{UserID: 1, Group: 1, BatteryLevel: 0.9, State: st})
		if code != http.StatusOK {
			return 0, fmt.Errorf("offload code %d: %s", code, resp.Error)
		}
		return time.Since(start), nil
	}
	// Warm use, then park, then the measured reactivating request.
	if _, err := offload(sts[0]); err != nil {
		return err
	}
	if n := fe.SweepCold(time.Now().Add(time.Hour)); n != 1 {
		return fmt.Errorf("sweep parked %d backends, want 1", n)
	}
	coldTook, err := offload(sts[1])
	if err != nil {
		return err
	}
	dec, err := ctrl.Step(ctx, trace.Slot{Start: sim.Epoch, Groups: [][]int{nil, {1}}})
	if err != nil {
		return err
	}
	if len(dec.Activated) > 0 {
		rep.ColdActivations = dec.Activated[0]
	}
	rep.ColdStartMs = float64(coldStart) / float64(time.Millisecond)
	rep.ColdRequestMs = float64(coldTook) / float64(time.Millisecond)
	rep.DecisionDigest = ctrl.Digest()
	return nil
}

// Run executes all three scenarios and assembles the report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	rep := &Report{
		Schema:   Schema,
		Seed:     cfg.Seed,
		Requests: cfg.Requests,
		Workers:  cfg.Workers,
	}
	if err := runBatchingAB(ctx, cfg, rep); err != nil {
		return nil, fmt.Errorf("servebench: batching: %w", err)
	}
	if err := runBackpressure(ctx, cfg, rep); err != nil {
		return nil, fmt.Errorf("servebench: backpressure: %w", err)
	}
	if err := runScaleToZero(ctx, cfg, rep); err != nil {
		return nil, fmt.Errorf("servebench: scale-to-zero: %w", err)
	}
	return rep, nil
}
