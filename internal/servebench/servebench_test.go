package servebench

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives a downsized run of all three scenarios and pins
// the report invariants the benchdiff gates build on: batching beats
// unbatched, saturation sheds with typed rejections while the healthy
// backend's latency stays bounded, and the scale-to-zero scenario is
// exactly reproducible — same activation count, same decision digest —
// across runs.
func TestRunSmoke(t *testing.T) {
	cfg := Config{Seed: 7, Requests: 40, Workers: 8}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.BatchSpeedup <= 1 {
		t.Fatalf("batch speedup = %.2f, batching did not help", rep.BatchSpeedup)
	}
	if rep.UnbatchedP99Ms <= 0 || rep.BatchedP99Ms <= 0 {
		t.Fatalf("missing p99s: %+v", rep)
	}
	if rep.QueueFullRejections == 0 {
		t.Fatal("saturated cell shed nothing — the admission queue never backpressured")
	}
	if rep.SaturatedHoldRatio <= 0 {
		t.Fatalf("hold ratio = %.2f", rep.SaturatedHoldRatio)
	}
	if rep.ColdActivations != 1 {
		t.Fatalf("cold activations = %d, want exactly 1", rep.ColdActivations)
	}
	if rep.ColdRequestMs < rep.ColdStartMs {
		t.Fatalf("activating request took %.2f ms, below the %.0f ms cold start",
			rep.ColdRequestMs, rep.ColdStartMs)
	}
	if !strings.HasPrefix(rep.DecisionDigest, "fnv1a:") {
		t.Fatalf("decision digest = %q", rep.DecisionDigest)
	}
	for _, want := range []string{"batching A/B", "hold ratio", "scale-to-zero", rep.DecisionDigest} {
		if !strings.Contains(rep.Summary(), want) {
			t.Fatalf("summary missing %q:\n%s", want, rep.Summary())
		}
	}

	rep2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.DecisionDigest != rep.DecisionDigest {
		t.Fatalf("scale-to-zero digests diverged across same-seed runs: %s vs %s",
			rep2.DecisionDigest, rep.DecisionDigest)
	}
	if rep2.ColdActivations != rep.ColdActivations {
		t.Fatalf("activation counts diverged: %d vs %d", rep2.ColdActivations, rep.ColdActivations)
	}

	path := filepath.Join(t.TempDir(), "serve.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *rep {
		t.Fatalf("round trip mutated the report:\n%+v\n%+v", back, rep)
	}
}

// TestReadReportRejectsForeignSchema keeps benchdiff's dispatch honest:
// a servebench reader must refuse other benchmark artifacts.
func TestReadReportRejectsForeignSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"accelcloud/rpcbench/v1"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
