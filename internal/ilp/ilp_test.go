package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"accelcloud/internal/lp"
)

func TestSolveSimpleCovering(t *testing.T) {
	// Two "instance types": cost 1 capacity 3, cost 2 capacity 7.
	// Cover demand 10 at minimum cost: LP says 10/7 of type B (cost
	// 2.857); integers: {1×B + 1×A} = cost 3 covers 10. {2×B} = cost 4.
	// {4×A} = cost 4 covers 12. Optimal: 3.
	p := &Problem{
		Objective: []float64{1, 2},
		Constraints: []lp.Constraint{
			{Coeffs: []float64{3, 7}, Rel: lp.GE, RHS: 10},
		},
		Upper: []int{10, 10},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-3) > 1e-9 {
		t.Fatalf("objective = %v, want 3", s.Objective)
	}
	if s.X[0] != 1 || s.X[1] != 1 {
		t.Fatalf("x = %v, want [1 1]", s.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// Max 2 instances of capacity 3 cannot cover demand 10.
	p := &Problem{
		Objective: []float64{1},
		Constraints: []lp.Constraint{
			{Coeffs: []float64{3}, Rel: lp.GE, RHS: 10},
		},
		Upper: []int{2},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []lp.Constraint{
			{Coeffs: []float64{1}, Rel: lp.GE, RHS: 0},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestSolveEqualityAndLE(t *testing.T) {
	// x + y = 5, x <= 2, min 3x + y -> x=0, y=5, obj 5.
	p := &Problem{
		Objective: []float64{3, 1},
		Constraints: []lp.Constraint{
			{Coeffs: []float64{1, 1}, Rel: lp.EQ, RHS: 5},
			{Coeffs: []float64{1, 0}, Rel: lp.LE, RHS: 2},
		},
		Upper: []int{10, 10},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal || math.Abs(s.Objective-5) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal 5", s.Status, s.Objective)
	}
	if s.X[0] != 0 || s.X[1] != 5 {
		t.Fatalf("x = %v, want [0 5]", s.X)
	}
}

func TestSolveFractionalRelaxationNeedsBranching(t *testing.T) {
	// Classic: min x1+x2 st 2x1+x2 >= 3, x1+2x2 >= 3. LP optimum is
	// (1,1) = 2 which is integral... craft one that is fractional:
	// min x st 2x >= 3 -> LP x=1.5, integer x=2.
	p := &Problem{
		Objective: []float64{1},
		Constraints: []lp.Constraint{
			{Coeffs: []float64{2}, Rel: lp.GE, RHS: 3},
		},
		Upper: []int{5},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal || s.X[0] != 2 {
		t.Fatalf("got %v x=%v, want optimal x=2", s.Status, s.X)
	}
	if s.Nodes < 2 {
		t.Fatalf("expected branching, explored %d nodes", s.Nodes)
	}
}

func TestValidate(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Fatal("empty objective should fail")
	}
	if _, err := Solve(&Problem{Objective: []float64{1}, Upper: []int{1, 2}}); err == nil {
		t.Fatal("bound length mismatch should fail")
	}
	if _, err := Solve(&Problem{Objective: []float64{1}, Upper: []int{-1}}); err == nil {
		t.Fatal("negative bound should fail")
	}
}

func TestBruteForceRequiresBounds(t *testing.T) {
	p := &Problem{Objective: []float64{1}}
	if _, err := BruteForce(p); err == nil {
		t.Fatal("BruteForce without bounds should fail")
	}
}

func TestObjectiveHelper(t *testing.T) {
	if got := Objective([]float64{2, 3}, []int{4, 5}); got != 23 {
		t.Fatalf("Objective = %v, want 23", got)
	}
}

func TestSortPlanKeys(t *testing.T) {
	keys := SortPlanKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}

// Property: branch-and-bound matches brute force on random covering
// problems shaped like the paper's allocation model (positive costs,
// positive capacities, GE demands, LE cap on the instance count).
func TestSolveMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3) // 2..4 instance types
		m := 1 + r.Intn(3) // 1..3 demand groups
		p := &Problem{
			Objective: make([]float64, n),
			Upper:     make([]int, n),
		}
		for j := 0; j < n; j++ {
			p.Objective[j] = float64(1+r.Intn(20)) / 4
			p.Upper[j] = 4
		}
		for i := 0; i < m; i++ {
			row := lp.Constraint{Coeffs: make([]float64, n), Rel: lp.GE, RHS: float64(r.Intn(30))}
			for j := 0; j < n; j++ {
				row.Coeffs[j] = float64(1 + r.Intn(15))
			}
			p.Constraints = append(p.Constraints, row)
		}
		// Cloud cap: at most CC instances across all types.
		cap := lp.Constraint{Coeffs: make([]float64, n), Rel: lp.LE, RHS: float64(3 + r.Intn(10))}
		for j := 0; j < n; j++ {
			cap.Coeffs[j] = 1
		}
		p.Constraints = append(p.Constraints, cap)

		got, err := Solve(p)
		if err != nil {
			return false
		}
		want, err := BruteForce(p)
		if err != nil {
			return false
		}
		if got.Status != want.Status {
			return false
		}
		if got.Status != lp.Optimal {
			return true
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			return false
		}
		return feasible(p, got.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the integer optimum is never better than the LP relaxation
// and the returned point is always feasible.
func TestSolveRelaxationBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		p := &Problem{Objective: make([]float64, n), Upper: make([]int, n)}
		for j := 0; j < n; j++ {
			p.Objective[j] = 0.5 + r.Float64()*5
			p.Upper[j] = 6
		}
		row := lp.Constraint{Coeffs: make([]float64, n), Rel: lp.GE, RHS: 5 + r.Float64()*20}
		for j := 0; j < n; j++ {
			row.Coeffs[j] = 0.5 + r.Float64()*10
		}
		p.Constraints = append(p.Constraints, row)

		intSol, err := Solve(p)
		if err != nil {
			return false
		}
		relSol, err := lp.Solve(&lp.Problem{Objective: p.Objective, Constraints: relaxBounds(p)})
		if err != nil {
			return false
		}
		if intSol.Status != lp.Optimal {
			// With capacity 6×n×min-coeff it may genuinely be
			// infeasible; that's fine as long as the relaxation agrees
			// or is itself infeasible within the bounds.
			return relSol.Status != lp.Optimal || !existsFeasible(p)
		}
		return intSol.Objective >= relSol.Objective-1e-6 && feasible(p, intSol.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// relaxBounds rebuilds the constraint list with the Upper bounds encoded
// as LE rows (the relaxation over the same box).
func relaxBounds(p *Problem) []lp.Constraint {
	n := len(p.Objective)
	out := append([]lp.Constraint(nil), p.Constraints...)
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		out = append(out, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: float64(p.Upper[j])})
	}
	return out
}

// existsFeasible brute-force checks whether any integer point in the box
// is feasible.
func existsFeasible(p *Problem) bool {
	s, err := BruteForce(p)
	return err == nil && s.Status == lp.Optimal
}
