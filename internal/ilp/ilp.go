// Package ilp solves small integer linear programs by branch and bound
// over the LP relaxation from internal/lp. It implements the optimizer the
// paper's Resource Allocator delegates to lpSolveAPI (§V): minimize
// instance cost subject to capacity covering the predicted workload and
// the cloud's instance cap.
//
// Problems here are tiny (a handful of instance types, counts bounded by
// the cloud cap CC ≤ 20), so exact search is cheap. A brute-force
// reference solver is included and used by the tests to certify
// optimality of the branch-and-bound answers.
package ilp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"accelcloud/internal/lp"
)

// Problem is an integer program over n non-negative integer variables:
//
//	minimize   c·x
//	subject to A x {<=, >=, =} b
//	           0 <= x_j <= Upper[j], x integer
type Problem struct {
	// Objective holds the cost coefficients c (minimization).
	Objective []float64
	// Constraints holds the rows of the program.
	Constraints []lp.Constraint
	// Upper bounds each variable; a nil slice means unbounded above
	// (bounded only through the constraints).
	Upper []int
}

// Solution is the result of an integer solve.
type Solution struct {
	Status    lp.Status
	X         []int
	Objective float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

const intTol = 1e-6

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	if len(p.Objective) == 0 {
		return errors.New("ilp: empty objective")
	}
	if p.Upper != nil && len(p.Upper) != len(p.Objective) {
		return fmt.Errorf("ilp: %d upper bounds for %d variables", len(p.Upper), len(p.Objective))
	}
	for j, u := range p.Upper {
		if u < 0 {
			return fmt.Errorf("ilp: negative upper bound %d for variable %d", u, j)
		}
	}
	base := lp.Problem{Objective: p.Objective, Constraints: p.Constraints}
	return base.Validate()
}

// Solve runs branch and bound. It returns the optimal integer solution,
// lp.Infeasible when no integer point satisfies the constraints, or
// lp.Unbounded when the relaxation is unbounded (callers should add upper
// bounds in that case).
func Solve(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.Objective)

	// Bounds are encoded as extra constraints layered per node.
	type node struct {
		lower []float64
		upper []float64
	}
	rootLower := make([]float64, n)
	rootUpper := make([]float64, n)
	for j := 0; j < n; j++ {
		if p.Upper != nil {
			rootUpper[j] = float64(p.Upper[j])
		} else {
			rootUpper[j] = math.Inf(1)
		}
	}

	best := Solution{Status: lp.Infeasible, Objective: math.Inf(1)}
	stack := []node{{lower: rootLower, upper: rootUpper}}
	nodes := 0

	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		if nodes > 200000 {
			return Solution{}, errors.New("ilp: node budget exhausted")
		}

		rel := relaxation(p, nd.lower, nd.upper)
		sol, err := lp.Solve(rel)
		if err != nil {
			return Solution{}, fmt.Errorf("ilp: relaxation: %w", err)
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if nodes == 1 {
				return Solution{Status: lp.Unbounded, Nodes: nodes}, nil
			}
			// A bounded-variable subproblem cannot be unbounded unless
			// the root was; treat as numerical noise and skip.
			continue
		}
		if sol.Objective >= best.Objective-intTol {
			continue // bound: cannot improve
		}
		// Find the most fractional variable.
		branch := -1
		worst := intTol
		for j, v := range sol.X {
			frac := math.Abs(v - math.Round(v))
			if frac > worst {
				worst = frac
				branch = j
			}
		}
		if branch == -1 {
			// Integral solution.
			x := make([]int, n)
			for j, v := range sol.X {
				x[j] = int(math.Round(v))
			}
			best = Solution{Status: lp.Optimal, X: x, Objective: sol.Objective}
			continue
		}
		v := sol.X[branch]
		// Down branch: x_branch <= floor(v).
		down := node{lower: cloneF(nd.lower), upper: cloneF(nd.upper)}
		down.upper[branch] = math.Min(down.upper[branch], math.Floor(v))
		// Up branch: x_branch >= ceil(v).
		up := node{lower: cloneF(nd.lower), upper: cloneF(nd.upper)}
		up.lower[branch] = math.Max(up.lower[branch], math.Ceil(v))
		// Explore the up branch first: covering problems usually need
		// more capacity, so this finds incumbents faster.
		stack = append(stack, down, up)
	}
	best.Nodes = nodes
	if best.Status == lp.Optimal {
		return best, nil
	}
	return Solution{Status: lp.Infeasible, Nodes: nodes}, nil
}

// relaxation builds the LP relaxation of p with per-variable bound rows.
func relaxation(p *Problem, lower, upper []float64) *lp.Problem {
	n := len(p.Objective)
	rel := &lp.Problem{Objective: p.Objective}
	rel.Constraints = append(rel.Constraints, p.Constraints...)
	for j := 0; j < n; j++ {
		if lower[j] > 0 {
			row := make([]float64, n)
			row[j] = 1
			rel.Constraints = append(rel.Constraints, lp.Constraint{Coeffs: row, Rel: lp.GE, RHS: lower[j]})
		}
		if !math.IsInf(upper[j], 1) {
			row := make([]float64, n)
			row[j] = 1
			rel.Constraints = append(rel.Constraints, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: upper[j]})
		}
	}
	return rel
}

func cloneF(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	return out
}

// BruteForce enumerates every integer point within Upper bounds and
// returns the optimum. It requires finite Upper bounds and is meant as a
// test oracle for Solve.
func BruteForce(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if p.Upper == nil {
		return Solution{}, errors.New("ilp: BruteForce requires upper bounds")
	}
	n := len(p.Objective)
	space := 1
	for _, u := range p.Upper {
		space *= u + 1
		if space > 50_000_000 {
			return Solution{}, errors.New("ilp: BruteForce search space too large")
		}
	}
	x := make([]int, n)
	best := Solution{Status: lp.Infeasible, Objective: math.Inf(1)}
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			if !feasible(p, x) {
				return
			}
			obj := 0.0
			for k, c := range p.Objective {
				obj += c * float64(x[k])
			}
			if obj < best.Objective {
				best = Solution{Status: lp.Optimal, X: append([]int(nil), x...), Objective: obj}
			}
			return
		}
		for v := 0; v <= p.Upper[j]; v++ {
			x[j] = v
			rec(j + 1)
		}
		x[j] = 0
	}
	rec(0)
	return best, nil
}

// feasible reports whether integer point x satisfies every constraint.
func feasible(p *Problem, x []int) bool {
	for _, c := range p.Constraints {
		lhs := 0.0
		for j, a := range c.Coeffs {
			lhs += a * float64(x[j])
		}
		switch c.Rel {
		case lp.LE:
			if lhs > c.RHS+intTol {
				return false
			}
		case lp.GE:
			if lhs < c.RHS-intTol {
				return false
			}
		case lp.EQ:
			if math.Abs(lhs-c.RHS) > intTol {
				return false
			}
		}
	}
	return true
}

// Objective computes c·x for an integer point.
func Objective(c []float64, x []int) float64 {
	obj := 0.0
	for j := range x {
		obj += c[j] * float64(x[j])
	}
	return obj
}

// SortPlanKeys orders a count map's keys for deterministic display.
func SortPlanKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
