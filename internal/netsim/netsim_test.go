package netsim

import (
	"math"
	"testing"
	"time"

	"accelcloud/internal/sim"
)

func TestDefaultOperators(t *testing.T) {
	ops, err := DefaultOperators()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("got %d operators, want 3", len(ops))
	}
	for _, want := range []string{"alpha", "beta", "gamma"} {
		op, err := OperatorByName(ops, want)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := op.RTT[Tech3G]; !ok {
			t.Fatalf("%s missing 3G model", want)
		}
		if _, ok := op.RTT[TechLTE]; !ok {
			t.Fatalf("%s missing LTE model", want)
		}
	}
	if _, err := OperatorByName(ops, "delta"); err == nil {
		t.Fatal("unknown operator should fail")
	}
}

func TestTechString(t *testing.T) {
	if Tech3G.String() != "3G" || TechLTE.String() != "LTE" {
		t.Fatal("Tech strings wrong")
	}
	if Tech(9).String() == "" {
		t.Fatal("unknown tech should still render")
	}
}

// The headline claim of Fig 11: LTE RTT ≈ 36–42 ms, 3G ≈ 128–141 ms.
// Check the empirical aggregates of each calibrated model against the
// paper's numbers.
func TestCalibratedAggregatesMatchPaper(t *testing.T) {
	ops, err := DefaultOperators()
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	samples, err := GenerateDataset(rng.Stream("netradar"), ops, sim.Epoch, 40000)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"alpha", "beta", "gamma"} {
		for _, tech := range []Tech{Tech3G, TechLTE} {
			sum, err := SummaryMs(samples, op, tech)
			if err != nil {
				t.Fatal(err)
			}
			wantMean := PaperMeanMs(op, tech)
			if wantMean == 0 {
				t.Fatalf("no paper mean for %s/%v", op, tech)
			}
			if rel := math.Abs(sum.Mean-wantMean) / wantMean; rel > 0.15 {
				t.Errorf("%s/%v mean = %.1f ms, paper %.1f ms (%.0f%% off)",
					op, tech, sum.Mean, wantMean, rel*100)
			}
			// The ordering claim: 3G must be slower than LTE.
			if tech == Tech3G && sum.Mean < 80 {
				t.Errorf("%s 3G mean %.1f ms implausibly low", op, sum.Mean)
			}
			if tech == TechLTE && sum.Mean > 80 {
				t.Errorf("%s LTE mean %.1f ms implausibly high", op, sum.Mean)
			}
		}
	}
}

func TestPaperLookups(t *testing.T) {
	if got := PaperSampleCount("beta", TechLTE); got != 493956 {
		t.Fatalf("PaperSampleCount = %d, want 493956", got)
	}
	if got := PaperSampleCount("nobody", Tech3G); got != 0 {
		t.Fatalf("unknown operator count = %d, want 0", got)
	}
	if got := PaperMeanMs("alpha", Tech3G); got != 128 {
		t.Fatalf("PaperMeanMs = %v, want 128", got)
	}
	if got := PaperMeanMs("nobody", Tech3G); got != 0 {
		t.Fatalf("unknown operator mean = %v, want 0", got)
	}
}

func TestSampleDeterminism(t *testing.T) {
	ops, err := DefaultOperators()
	if err != nil {
		t.Fatal(err)
	}
	a, err := GenerateDataset(sim.NewRNG(7).Stream("x"), ops, sim.Epoch, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDataset(sim.NewRNG(7).Stream("x"), ops, sim.Epoch, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateDatasetValidation(t *testing.T) {
	ops, _ := DefaultOperators()
	if _, err := GenerateDataset(sim.NewRNG(1).Stream("x"), ops, sim.Epoch, 0); err == nil {
		t.Fatal("n=0 should fail")
	}
	bad := []Operator{{Name: "", RTT: nil}}
	if _, err := GenerateDataset(sim.NewRNG(1).Stream("x"), bad, sim.Epoch, 1); err == nil {
		t.Fatal("invalid operator should fail")
	}
}

func TestSamplePositiveAndFloored(t *testing.T) {
	ops, _ := DefaultOperators()
	r := sim.NewRNG(3).Stream("rtt")
	m := ops[0].RTT[TechLTE]
	for i := 0; i < 5000; i++ {
		at := sim.Epoch.Add(time.Duration(i) * time.Minute)
		if got := m.Sample(r, at); got < time.Millisecond {
			t.Fatalf("RTT %v below 1 ms floor", got)
		}
	}
}

func TestDiurnalShape(t *testing.T) {
	d := defaultDiurnal(0.18)
	if d[20] <= d[4] {
		t.Fatalf("busy hour %v should exceed night %v", d[20], d[4])
	}
	sum := 0.0
	for _, f := range d {
		sum += f
	}
	if math.Abs(sum/24-1) > 0.01 {
		t.Fatalf("diurnal mean = %v, want ≈1", sum/24)
	}
}

func TestAggregateHourly(t *testing.T) {
	samples := []Sample{
		{At: sim.Epoch.Add(2 * time.Hour), Operator: "alpha", Tech: Tech3G, RTT: 100 * time.Millisecond},
		{At: sim.Epoch.Add(2*time.Hour + time.Minute), Operator: "alpha", Tech: Tech3G, RTT: 200 * time.Millisecond},
		{At: sim.Epoch.Add(5 * time.Hour), Operator: "alpha", Tech: TechLTE, RTT: 40 * time.Millisecond},
	}
	series := AggregateHourly(samples)
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	if series[0].Tech != Tech3G || series[0].Count[2] != 2 {
		t.Fatalf("series[0] = %+v", series[0])
	}
	if math.Abs(series[0].MeanMs[2]-150) > 1e-9 {
		t.Fatalf("hour-2 mean = %v, want 150", series[0].MeanMs[2])
	}
	if series[1].Count[5] != 1 || math.Abs(series[1].MeanMs[5]-40) > 1e-9 {
		t.Fatalf("series[1] = %+v", series[1])
	}
}

func TestDiurnalCongestionVisibleInHourlySeries(t *testing.T) {
	ops, _ := DefaultOperators()
	r := sim.NewRNG(5).Stream("hours")
	samples, err := GenerateDataset(r, ops[:1], sim.Epoch, 60000)
	if err != nil {
		t.Fatal(err)
	}
	series := AggregateHourly(samples)
	for _, hs := range series {
		if hs.Tech != Tech3G {
			continue
		}
		if hs.MeanMs[20] <= hs.MeanMs[4] {
			t.Fatalf("3G busy-hour mean %.1f should exceed night mean %.1f",
				hs.MeanMs[20], hs.MeanMs[4])
		}
	}
}

func TestRTTModelValidate(t *testing.T) {
	ops, _ := DefaultOperators()
	m := ops[0].RTT[Tech3G]
	if err := m.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := m
	bad.TailWeight = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("tail weight > 1 should fail")
	}
	bad2 := m
	bad2.Diurnal[3] = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero diurnal factor should fail")
	}
}

func TestMeanMsAnalytic(t *testing.T) {
	ops, _ := DefaultOperators()
	m := ops[1].RTT[TechLTE] // beta LTE: paper mean 36
	got := m.MeanMs()
	if math.Abs(got-36)/36 > 0.20 {
		t.Fatalf("analytic mean %v too far from 36", got)
	}
}

// The sharded generator must be bit-identical at every worker count: the
// substream a chunk draws from depends only on (pair, chunk index), never
// on scheduling.
func TestGenerateDatasetShardedWorkerInvariance(t *testing.T) {
	ops, err := DefaultOperators()
	if err != nil {
		t.Fatal(err)
	}
	// Span several chunks per pair so the shard boundary logic is hit.
	n := ShardSize*2 + 137
	serial, err := GenerateDatasetSharded(sim.NewRNG(11), ops, sim.Epoch, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 6*n {
		t.Fatalf("got %d samples, want %d", len(serial), 6*n)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := GenerateDatasetSharded(sim.NewRNG(11), ops, sim.Epoch, n, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d samples, want %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: sample %d differs: %+v vs %+v", workers, i, par[i], serial[i])
			}
		}
	}
}

// Sharded draws come from different substreams than the legacy serial
// generator, but the distribution is the same model: aggregates must
// still match the paper within the usual tolerance.
func TestGenerateDatasetShardedAggregates(t *testing.T) {
	ops, err := DefaultOperators()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := GenerateDatasetSharded(sim.NewRNG(1), ops, sim.Epoch, 40000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"alpha", "beta", "gamma"} {
		for _, tech := range []Tech{Tech3G, TechLTE} {
			sum, err := SummaryMs(samples, op, tech)
			if err != nil {
				t.Fatal(err)
			}
			paper := PaperMeanMs(op, tech)
			if rel := math.Abs(sum.Mean-paper) / paper; rel > 0.25 {
				t.Errorf("%s/%v sharded mean %.1f vs paper %.1f", op, tech, sum.Mean, paper)
			}
		}
	}
}

func TestGenerateDatasetShardedValidation(t *testing.T) {
	ops, _ := DefaultOperators()
	if _, err := GenerateDatasetSharded(sim.NewRNG(1), ops, sim.Epoch, 0, 4); err == nil {
		t.Fatal("n=0 should fail")
	}
	bad := []Operator{{}}
	if _, err := GenerateDatasetSharded(sim.NewRNG(1), bad, sim.Epoch, 10, 4); err == nil {
		t.Fatal("invalid operator should fail")
	}
}

func TestInflateScalesMeanPreservingShape(t *testing.T) {
	ops, err := DefaultOperators()
	if err != nil {
		t.Fatal(err)
	}
	m := ops[0].RTT[Tech3G]
	inflated := m.Inflate(10)
	// The analytic mean scales by exactly the factor (a Mu shift is a
	// multiplicative scale of a log-normal), the shape parameter is
	// untouched, and the diurnal profile survives.
	if got, want := inflated.MeanMs(), 10*m.MeanMs(); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("inflated mean = %.2f, want %.2f", got, want)
	}
	if inflated.Body.Sigma != m.Body.Sigma || inflated.Tail.Sigma != m.Tail.Sigma {
		t.Fatal("inflation changed the distribution shape")
	}
	if inflated.Diurnal != m.Diurnal {
		t.Fatal("inflation changed the diurnal profile")
	}
	// Samples scale too: the same stream drawn from both models differs
	// by exactly the factor.
	a := m.Sample(sim.NewRNG(1).Stream("rtt"), sim.Epoch)
	b := inflated.Sample(sim.NewRNG(1).Stream("rtt"), sim.Epoch)
	if ratio := float64(b) / float64(a); math.Abs(ratio-10) > 0.01 {
		t.Fatalf("sample ratio = %.3f, want 10", ratio)
	}
	// Non-positive factors are a no-op.
	if got := m.Inflate(0).MeanMs(); got != m.MeanMs() {
		t.Fatalf("Inflate(0) mean = %.2f, want unchanged", got)
	}
}
