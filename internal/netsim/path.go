package netsim

import (
	"fmt"
	"math/rand"
	"time"
)

// Path models one device→region network path: the cellular access leg
// (the per-operator, per-technology RTTModel measured in §V) plus a
// fixed wide-area propagation delay for the geographic distance between
// the operator's gateway and the region's front-end. The access model
// captures jitter, diurnal load and heavy tails; the propagation term
// is what actually separates regions — a device in Helsinki pays ~0 ms
// extra to eu-north but ~90 ms to us-east on every round trip.
type Path struct {
	// Model is the access-network RTT model.
	Model RTTModel
	// PropagationMs is the extra round-trip propagation delay to the
	// region, in milliseconds (>= 0; 0 means the region is co-located
	// with the operator's gateway).
	PropagationMs float64
}

// Validate checks the path's parameters.
func (p Path) Validate() error {
	if err := p.Model.Validate(); err != nil {
		return err
	}
	if p.PropagationMs < 0 {
		return fmt.Errorf("netsim: negative propagation %.1fms", p.PropagationMs)
	}
	return nil
}

// Sample draws one device→region RTT: an access-leg draw from the
// cellular model plus the fixed propagation to the region.
func (p Path) Sample(r *rand.Rand, at time.Time) time.Duration {
	return p.Model.Sample(r, at) + time.Duration(p.PropagationMs*float64(time.Millisecond))
}

// MeanMs is the expected RTT over the path in milliseconds — the
// quantity the nearest-region selector orders regions by.
func (p Path) MeanMs() float64 {
	return p.Model.MeanMs() + p.PropagationMs
}

// PathTo builds the path from an operator/technology access model to a
// region at the given propagation distance.
func PathTo(op Operator, tech Tech, propagationMs float64) (Path, error) {
	m, ok := op.RTT[tech]
	if !ok {
		return Path{}, fmt.Errorf("netsim: operator %q has no %s model", op.Name, tech)
	}
	p := Path{Model: m, PropagationMs: propagationMs}
	if err := p.Validate(); err != nil {
		return Path{}, err
	}
	return p, nil
}
