// Package netsim models the cellular network latency the paper measures
// from the NetRadar dataset (§VI-C4, Fig 11): per-operator 3G and LTE
// round-trip-time distributions with a diurnal congestion profile.
//
// Substitution note (see DESIGN.md): the NetRadar dataset itself is not
// available, so each (operator, technology) pair is modelled as a
// log-normal distribution calibrated to the exact mean/median pairs the
// paper reports, with a heavy-tail mixture component tuned toward the
// reported standard deviations. Samples are drawn with a time-of-day
// multiplier, and Fig 11 aggregates them hourly exactly like the paper.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
)

// Tech is the radio access technology.
type Tech int

// Supported technologies.
const (
	Tech3G Tech = iota + 1
	TechLTE
)

// String implements fmt.Stringer.
func (t Tech) String() string {
	switch t {
	case Tech3G:
		return "3G"
	case TechLTE:
		return "LTE"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// ParseTech parses a technology name, case-insensitively — the inverse
// of String, for flag values and mobility schedules ("3g", "LTE").
func ParseTech(s string) (Tech, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "3G":
		return Tech3G, nil
	case "LTE", "4G":
		return TechLTE, nil
	default:
		return 0, fmt.Errorf("netsim: unknown technology %q (want 3g or lte)", s)
	}
}

// RTTModel is the latency model of one (operator, technology) pair.
type RTTModel struct {
	// Body is the calibrated log-normal bulk of the distribution.
	Body stats.LogNormal
	// TailWeight is the probability of a congestion spike.
	TailWeight float64
	// Tail is the spike distribution (heavy right tail).
	Tail stats.LogNormal
	// Diurnal scales samples by hour of day (24 entries, mean ≈ 1).
	Diurnal [24]float64
}

// Validate checks model consistency.
func (m RTTModel) Validate() error {
	if m.TailWeight < 0 || m.TailWeight >= 1 {
		return fmt.Errorf("netsim: tail weight %v outside [0,1)", m.TailWeight)
	}
	for h, f := range m.Diurnal {
		if f <= 0 {
			return fmt.Errorf("netsim: diurnal factor %v at hour %d", f, h)
		}
	}
	return nil
}

// Sample draws one RTT for the given instant.
func (m RTTModel) Sample(r *rand.Rand, at time.Time) time.Duration {
	ms := m.Body.Sample(r)
	if m.TailWeight > 0 && r.Float64() < m.TailWeight {
		ms = m.Tail.Sample(r)
	}
	ms *= m.Diurnal[at.Hour()]
	if ms < 1 {
		ms = 1
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// MeanMs reports the analytic mean RTT in milliseconds (ignoring the
// diurnal profile, whose factors average ≈1).
func (m RTTModel) MeanMs() float64 {
	return (1-m.TailWeight)*m.Body.Mean() + m.TailWeight*m.Tail.Mean()
}

// Inflate returns a copy of the model with every sampled RTT scaled by
// factor — the slow-network fault of the chaos engine (internal/faults)
// models congestion as multiplicative RTT inflation, exactly how the
// diurnal profile already scales samples. Scaling a log-normal is a Mu
// shift, so the distribution shape (and the calibration to the paper's
// aggregates) is preserved; the diurnal profile is untouched. Factors
// <= 0 return the model unchanged.
func (m RTTModel) Inflate(factor float64) RTTModel {
	if factor <= 0 {
		return m
	}
	out := m
	out.Body.Mu += math.Log(factor)
	out.Tail.Mu += math.Log(factor)
	return out
}

// Operator bundles the two technology models of one carrier.
type Operator struct {
	Name string
	RTT  map[Tech]RTTModel
}

// Validate checks the operator definition.
func (o Operator) Validate() error {
	if o.Name == "" {
		return errors.New("netsim: operator without name")
	}
	if len(o.RTT) == 0 {
		return fmt.Errorf("netsim: operator %s has no models", o.Name)
	}
	for tech, m := range o.RTT {
		if tech != Tech3G && tech != TechLTE {
			return fmt.Errorf("netsim: operator %s has invalid tech %d", o.Name, int(tech))
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("operator %s %v: %w", o.Name, tech, err)
		}
	}
	return nil
}

// defaultDiurnal is a mild congestion curve: busiest in the evening
// (18–22h), quietest at night (03–05h). Factors average ≈ 1 over the day.
func defaultDiurnal(amplitude float64) [24]float64 {
	var out [24]float64
	for h := 0; h < 24; h++ {
		// Peak at hour 20, trough at hour 4 (cosine over the day).
		phase := 2 * math.Pi * float64(h-20) / 24
		out[h] = 1 + amplitude*math.Cos(phase)
	}
	return out
}

// aggregate is one calibration target from the paper (milliseconds).
type aggregate struct {
	mean, median, sd float64
	samples          int
}

// paperAggregates are the Fig 11 numbers (§VI-C4).
var paperAggregates = map[string]map[Tech]aggregate{
	"alpha": {
		Tech3G:  {mean: 128, median: 51, sd: 362, samples: 205762},
		TechLTE: {mean: 41, median: 34, sd: 56, samples: 182549},
	},
	"beta": {
		Tech3G:  {mean: 141, median: 60, sd: 376, samples: 448942},
		TechLTE: {mean: 36, median: 25, sd: 70, samples: 493956},
	},
	"gamma": {
		Tech3G:  {mean: 137, median: 56, sd: 379, samples: 191973},
		TechLTE: {mean: 42, median: 27, sd: 84, samples: 152605},
	},
}

// PaperSampleCount reports the NetRadar sample count the paper lists for
// an operator/technology pair (0 when unknown).
func PaperSampleCount(operator string, tech Tech) int {
	if m, ok := paperAggregates[operator]; ok {
		return m[tech].samples
	}
	return 0
}

// PaperMeanMs reports the paper's mean RTT for an operator/technology
// pair (0 when unknown).
func PaperMeanMs(operator string, tech Tech) float64 {
	if m, ok := paperAggregates[operator]; ok {
		return m[tech].mean
	}
	return 0
}

// DefaultOperators returns the three anonymized carriers α, β, γ
// calibrated to the paper's aggregates.
func DefaultOperators() ([]Operator, error) {
	names := []string{"alpha", "beta", "gamma"}
	out := make([]Operator, 0, len(names))
	for _, name := range names {
		op := Operator{Name: name, RTT: make(map[Tech]RTTModel, 2)}
		for tech, agg := range paperAggregates[name] {
			m, err := calibrate(agg)
			if err != nil {
				return nil, fmt.Errorf("netsim: calibrate %s/%v: %w", name, tech, err)
			}
			amp := 0.10
			if tech == Tech3G {
				amp = 0.18 // 3G congests harder at busy hours
			}
			m.Diurnal = defaultDiurnal(amp)
			op.RTT[tech] = m
		}
		if err := op.Validate(); err != nil {
			return nil, err
		}
		out = append(out, op)
	}
	return out, nil
}

// calibrate fits body+tail to a (mean, median, sd) aggregate: the body is
// the log-normal implied by (mean, median); a 1% spike component is then
// sized to close the gap toward the reported SD without moving the mean
// by more than a few percent.
func calibrate(agg aggregate) (RTTModel, error) {
	body, err := stats.LogNormalFromMeanMedian(agg.mean, agg.median)
	if err != nil {
		return RTTModel{}, err
	}
	// Spikes: rare (1%), centered an order of magnitude above the mean.
	tail, err := stats.LogNormalFromMeanMedian(agg.mean*8, agg.mean*5)
	if err != nil {
		return RTTModel{}, err
	}
	return RTTModel{Body: body, TailWeight: 0.01, Tail: tail}, nil
}

// OperatorByName finds one of the default operators.
func OperatorByName(ops []Operator, name string) (Operator, error) {
	for _, o := range ops {
		if o.Name == name {
			return o, nil
		}
	}
	return Operator{}, fmt.Errorf("netsim: unknown operator %q", name)
}

// Sample is one synthetic NetRadar measurement.
type Sample struct {
	At       time.Time     `json:"at"`
	Operator string        `json:"operator"`
	Tech     Tech          `json:"tech"`
	RTT      time.Duration `json:"rtt"`
}

// GenerateDataset draws n samples per (operator, tech) pair spread
// uniformly over one day starting at start. Output order is deterministic
// for a given rng.
func GenerateDataset(r *rand.Rand, ops []Operator, start time.Time, n int) ([]Sample, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netsim: need n > 0, got %d", n)
	}
	var out []Sample
	for _, op := range ops {
		if err := op.Validate(); err != nil {
			return nil, err
		}
		for _, tech := range []Tech{Tech3G, TechLTE} {
			m, ok := op.RTT[tech]
			if !ok {
				continue
			}
			for i := 0; i < n; i++ {
				at := start.Add(time.Duration(r.Float64() * 24 * float64(time.Hour)))
				out = append(out, Sample{At: at, Operator: op.Name, Tech: tech, RTT: m.Sample(r, at)})
			}
		}
	}
	return out, nil
}

// ShardSize is the per-goroutine sample chunk of GenerateDatasetSharded.
// It is the unit of RNG derivation, so it is part of the output contract:
// changing it changes the draws (but never their distribution).
const ShardSize = 8192

// GenerateDatasetSharded draws the same dataset shape as GenerateDataset
// — n samples per (operator, tech) pair over one day — but every
// ShardSize-sample chunk owns a substream derived from (pair, chunk
// index), and chunks fill disjoint regions of the preallocated output on
// up to workers goroutines. Output is bit-identical for a given g at ANY
// worker count, including 1; this is the Fig 11 hot loop (150k–500k
// samples per pair at paper scale).
func GenerateDatasetSharded(g *sim.RNG, ops []Operator, start time.Time, n, workers int) ([]Sample, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netsim: need n > 0, got %d", n)
	}
	// One shard = one (pair, chunk) unit of work.
	type shard struct {
		m        RTTModel
		operator string
		tech     Tech
		rng      *rand.Rand
		out      []Sample // disjoint sub-slice of the result
	}
	var shards []shard
	total := 0
	for _, op := range ops {
		if err := op.Validate(); err != nil {
			return nil, err
		}
		for _, tech := range []Tech{Tech3G, TechLTE} {
			if _, ok := op.RTT[tech]; ok {
				total += n
			}
		}
	}
	out := make([]Sample, total)
	base := 0
	for _, op := range ops {
		for _, tech := range []Tech{Tech3G, TechLTE} {
			m, ok := op.RTT[tech]
			if !ok {
				continue
			}
			pair := g.Sub(op.Name + "/" + tech.String())
			for lo, idx := 0, 0; lo < n; lo, idx = lo+ShardSize, idx+1 {
				hi := lo + ShardSize
				if hi > n {
					hi = n
				}
				shards = append(shards, shard{
					m: m, operator: op.Name, tech: tech,
					rng: pair.SubN("chunk", idx).Stream("samples"),
					out: out[base+lo : base+hi],
				})
			}
			base += n
		}
	}
	sim.FanOut(len(shards), workers, func(i int) {
		sh := shards[i]
		for k := range sh.out {
			at := start.Add(time.Duration(sh.rng.Float64() * 24 * float64(time.Hour)))
			sh.out[k] = Sample{At: at, Operator: sh.operator, Tech: sh.tech, RTT: sh.m.Sample(sh.rng, at)}
		}
	})
	return out, nil
}

// HourlySeries is the Fig 11 data for one operator/technology pair: the
// mean RTT per hour of day.
type HourlySeries struct {
	Operator string
	Tech     Tech
	MeanMs   [24]float64
	Count    [24]int
}

// AggregateHourly folds samples into per-hour mean series, mirroring the
// paper's hourly plots.
func AggregateHourly(samples []Sample) []HourlySeries {
	type key struct {
		op   string
		tech Tech
	}
	acc := make(map[key]*HourlySeries)
	var order []key
	for _, s := range samples {
		k := key{s.Operator, s.Tech}
		hs, ok := acc[k]
		if !ok {
			hs = &HourlySeries{Operator: s.Operator, Tech: s.Tech}
			acc[k] = hs
			order = append(order, k)
		}
		h := s.At.Hour()
		n := float64(hs.Count[h])
		hs.MeanMs[h] = (hs.MeanMs[h]*n + float64(s.RTT)/float64(time.Millisecond)) / (n + 1)
		hs.Count[h]++
	}
	out := make([]HourlySeries, 0, len(order))
	for _, k := range order {
		out = append(out, *acc[k])
	}
	return out
}

// SummaryMs computes mean/median/SD (in milliseconds) of the RTTs in
// samples matching the operator and tech.
func SummaryMs(samples []Sample, operator string, tech Tech) (stats.Summary, error) {
	var ms []float64
	for _, s := range samples {
		if s.Operator == operator && s.Tech == tech {
			ms = append(ms, float64(s.RTT)/float64(time.Millisecond))
		}
	}
	return stats.Summarize(ms)
}
