package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"single", []float64{3}, 3},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, 2, -4, 4}, 0},
		{"fractions", []float64{0.5, 1.5, 2.5}, 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.xs)
			if err != nil {
				t.Fatalf("Mean: %v", err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Fatalf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestVarianceAndSD(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatalf("Variance: %v", err)
	}
	// Sum of squared deviations is 32, n-1 = 7.
	if !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatalf("StdDev: %v", err)
	}
	if !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", sd)
	}
}

func TestVarianceTooFew(t *testing.T) {
	if _, err := Variance([]float64{1}); err == nil {
		t.Fatal("Variance of 1 sample should fail")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40}, {62.5, 37.5},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatal("empty percentile should return ErrEmpty")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("p<0 should fail")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("p>100 should fail")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMedianSingleton(t *testing.T) {
	got, err := Median([]float64{42})
	if err != nil || got != 42 {
		t.Fatalf("Median([42]) = %v, %v", got, err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v, want -1,7", lo, hi)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatal("MinMax(nil) should return ErrEmpty")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || !almostEqual(s.Mean, 5.5, 1e-12) || !almostEqual(s.Median, 5.5, 1e-12) {
		t.Fatalf("Summary = %+v", s)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Fatalf("Summary min/max = %v/%v", s.Min, s.Max)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatal("Summarize(nil) should return ErrEmpty")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	m, _ := Mean(xs)
	v, _ := Variance(xs)
	if !almostEqual(w.Mean(), m, 1e-9) {
		t.Fatalf("Welford mean %v != batch %v", w.Mean(), m)
	}
	if !almostEqual(w.Variance(), v, 1e-9) {
		t.Fatalf("Welford var %v != batch %v", w.Variance(), v)
	}
	lo, hi, _ := MinMax(xs)
	if w.Min() != lo || w.Max() != hi {
		t.Fatalf("Welford min/max %v/%v != %v/%v", w.Min(), w.Max(), lo, hi)
	}
	if w.N() != 500 {
		t.Fatalf("Welford N = %d", w.N())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.SD() != 0 {
		t.Fatal("empty Welford should report zeros")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Fatalf("single-sample Welford mean/var = %v/%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMerge(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var all, a, b Welford
	for i := 0; i < 400; i++ {
		x := r.ExpFloat64()
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) || !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Fatalf("merged (%v,%v) != combined (%v,%v)", a.Mean(), a.Variance(), all.Mean(), all.Variance())
	}
	var empty Welford
	empty.Merge(a)
	if empty.N() != a.N() {
		t.Fatal("merging into empty should copy")
	}
	before := a.N()
	a.Merge(Welford{})
	if a.N() != before {
		t.Fatal("merging empty should be a no-op")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.9, 10, 11} {
		h.Add(x)
	}
	// -1,0,1.9 -> bin0 ; 2 -> bin1 ; 9.9,10,11 -> bin4
	want := []int{3, 1, 0, 0, 3}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	if !almostEqual(h.BinCenter(0), 1, 1e-12) || !almostEqual(h.BinCenter(4), 9, 1e-12) {
		t.Fatalf("BinCenter wrong: %v %v", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("0 bins should fail")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range should fail")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a) / 255 * 100
		p2 := float64(b) / 255 * 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, err1 := Percentile(xs, p1)
		v2, err2 := Percentile(xs, p2)
		if err1 != nil || err2 != nil {
			return false
		}
		lo, hi, _ := MinMax(xs)
		return v1 <= v2 && v1 >= lo && v2 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
