package stats

import "math"

// SymmetricAccuracy scores a prediction against an actual value on [0, 1]:
// 1 for an exact match, decaying with the relative error normalized by the
// larger magnitude. Both-zero counts as a perfect prediction. This is the
// metric used to grade per-group workload predictions (Fig 10a).
func SymmetricAccuracy(predicted, actual float64) float64 {
	if predicted == actual {
		return 1
	}
	denom := math.Max(math.Abs(predicted), math.Abs(actual))
	if denom == 0 {
		return 1
	}
	acc := 1 - math.Abs(predicted-actual)/denom
	if acc < 0 {
		return 0
	}
	return acc
}

// MeanSymmetricAccuracy averages SymmetricAccuracy over paired slices.
// Returns 0 for mismatched or empty inputs.
func MeanSymmetricAccuracy(predicted, actual []float64) float64 {
	if len(predicted) == 0 || len(predicted) != len(actual) {
		return 0
	}
	sum := 0.0
	for i := range predicted {
		sum += SymmetricAccuracy(predicted[i], actual[i])
	}
	return sum / float64(len(predicted))
}

// MAPE returns the mean absolute percentage error of predictions against
// actuals, skipping zero actuals. Returns 0 when nothing is comparable.
func MAPE(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) {
		return 0
	}
	sum, n := 0.0, 0
	for i := range predicted {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(predicted[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RMSE returns the root mean squared error of predictions against actuals.
func RMSE(predicted, actual []float64) float64 {
	if len(predicted) == 0 || len(predicted) != len(actual) {
		return 0
	}
	sum := 0.0
	for i := range predicted {
		d := predicted[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(predicted)))
}
