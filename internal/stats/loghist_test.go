package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLogHistConstruction(t *testing.T) {
	bad := []struct{ lo, hi, growth float64 }{
		{0, 10, 1.1},
		{-1, 10, 1.1},
		{1, 1, 1.1},
		{10, 1, 1.1},
		{1, 10, 1},
		{1, 10, 0.5},
		{1, math.Inf(1), 1.1},
	}
	for i, c := range bad {
		if _, err := NewLogHist(c.lo, c.hi, c.growth); err == nil {
			t.Fatalf("case %d should fail: %+v", i, c)
		}
	}
	h, err := NewLogHist(0.1, 1000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 0 || h.Mean() != 0 {
		t.Fatal("fresh histogram not empty")
	}
	if _, err := h.Quantile(0.5); err == nil {
		t.Fatal("quantile of empty histogram should fail")
	}
}

func TestLogHistQuantileRelativeError(t *testing.T) {
	h := NewLatencyHist()
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Heavy-tailed latencies spanning four decades.
		x := math.Exp(r.NormFloat64()*1.5 + 2) // median e^2 ≈ 7.4 ms
		xs = append(xs, x)
		h.Add(x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got, err := h.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		rank := int(math.Ceil(q*float64(len(xs)))) - 1
		exact := xs[rank]
		if rel := math.Abs(got-exact) / exact; rel > 0.06 {
			t.Fatalf("q%.3f: got %.3f exact %.3f rel err %.3f > bucket bound", q, got, exact, rel)
		}
	}
	if h.Max() != xs[len(xs)-1] || h.Min() != xs[0] {
		t.Fatalf("min/max not exact: %v/%v vs %v/%v", h.Min(), h.Max(), xs[0], xs[len(xs)-1])
	}
	p100, err := h.Quantile(1)
	if err != nil || p100 != h.Max() {
		t.Fatalf("p100 = %v want exact max %v (err %v)", p100, h.Max(), err)
	}
	if _, err := h.Quantile(1.1); err == nil {
		t.Fatal("quantile > 1 should fail")
	}
}

func TestLogHistClampsOutOfRange(t *testing.T) {
	h, err := NewLogHist(1, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0)          // below lo
	h.Add(-5)         // negative
	h.Add(math.NaN()) // NaN → clamped to 0
	h.Add(1e9)        // far above hi
	if h.Total() != 4 {
		t.Fatalf("total = %d, clamped samples must not be dropped", h.Total())
	}
	q, err := h.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if q > h.Max() {
		t.Fatalf("q99 %v exceeds observed max %v", q, h.Max())
	}
}

func TestLogHistMerge(t *testing.T) {
	a := NewLatencyHist()
	b := NewLatencyHist()
	whole := NewLatencyHist()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		x := math.Exp(r.NormFloat64() + 3)
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != whole.Total() || math.Abs(a.Mean()-whole.Mean()) > 1e-9*whole.Mean() ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: %d/%v vs %d/%v", a.Total(), a.Mean(), whole.Total(), whole.Mean())
	}
	qa, _ := a.Quantile(0.99)
	qw, _ := whole.Quantile(0.99)
	if qa != qw {
		t.Fatalf("merged q99 %v != whole q99 %v", qa, qw)
	}
	// Merging into an empty histogram adopts the source's extremes.
	empty := NewLatencyHist()
	if err := empty.Merge(whole); err != nil {
		t.Fatal(err)
	}
	if empty.Min() != whole.Min() || empty.Max() != whole.Max() {
		t.Fatal("merge into empty lost extremes")
	}
	// Layout mismatch is rejected.
	other, err := NewLogHist(1, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	other.Add(2)
	if err := a.Merge(other); err == nil {
		t.Fatal("layout mismatch should fail")
	}
	// Merging nil or empty is a no-op.
	before := a.Total()
	if err := a.Merge(nil); err != nil || a.Total() != before {
		t.Fatal("nil merge must be a no-op")
	}
}
