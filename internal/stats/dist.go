package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a sampleable univariate distribution.
type Dist interface {
	// Sample draws one value using r.
	Sample(r *rand.Rand) float64
	// Mean reports the distribution mean.
	Mean() float64
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

var _ Dist = Uniform{}

// Sample draws from the uniform distribution.
func (u Uniform) Sample(r *rand.Rand) float64 {
	return u.Lo + r.Float64()*(u.Hi-u.Lo)
}

// Mean reports (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential is the exponential distribution with the given rate
// (events per unit time). Used for Poisson inter-arrival processes.
type Exponential struct {
	Rate float64
}

var _ Dist = Exponential{}

// Sample draws from the exponential distribution.
func (e Exponential) Sample(r *rand.Rand) float64 {
	return r.ExpFloat64() / e.Rate
}

// Mean reports 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Normal is the Gaussian distribution.
type Normal struct {
	Mu, Sigma float64
}

var _ Dist = Normal{}

// Sample draws from the normal distribution.
func (n Normal) Sample(r *rand.Rand) float64 {
	return n.Mu + n.Sigma*r.NormFloat64()
}

// Mean reports Mu.
func (n Normal) Mean() float64 { return n.Mu }

// LogNormal is the log-normal distribution: exp(Normal(Mu, Sigma)).
// It is the workhorse for network RTT modelling: heavy right tail, strictly
// positive support, and it is fully determined by (median, mean) pairs —
// exactly the aggregates the paper reports for the NetRadar dataset.
type LogNormal struct {
	Mu, Sigma float64
}

var _ Dist = LogNormal{}

// Sample draws from the log-normal distribution.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean reports exp(Mu + Sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Median reports exp(Mu).
func (l LogNormal) Median() float64 { return math.Exp(l.Mu) }

// SD reports the standard deviation of the log-normal distribution.
func (l LogNormal) SD() float64 {
	s2 := l.Sigma * l.Sigma
	return l.Mean() * math.Sqrt(math.Exp(s2)-1)
}

// LogNormalFromMeanMedian calibrates a log-normal distribution so that its
// mean and median match the given targets. Requires mean > median > 0
// (always true for right-skewed latency data).
func LogNormalFromMeanMedian(mean, median float64) (LogNormal, error) {
	if median <= 0 || mean <= median {
		return LogNormal{}, fmt.Errorf("stats: need mean %v > median %v > 0", mean, median)
	}
	mu := math.Log(median)
	sigma := math.Sqrt(2 * math.Log(mean/median))
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// Degenerate always yields Value. Useful to make stochastic components
// deterministic in tests.
type Degenerate struct {
	Value float64
}

var _ Dist = Degenerate{}

// Sample returns Value.
func (d Degenerate) Sample(*rand.Rand) float64 { return d.Value }

// Mean returns Value.
func (d Degenerate) Mean() float64 { return d.Value }

// Shifted adds Offset to samples from Base, clamping at Floor. It widens a
// base distribution's tail behaviour without re-deriving parameters (used
// for RTT spikes).
type Shifted struct {
	Base   Dist
	Offset float64
	Floor  float64
}

var _ Dist = Shifted{}

// Sample draws Base and shifts it.
func (s Shifted) Sample(r *rand.Rand) float64 {
	v := s.Base.Sample(r) + s.Offset
	if v < s.Floor {
		return s.Floor
	}
	return v
}

// Mean reports the shifted mean (ignores the floor clamp).
func (s Shifted) Mean() float64 { return s.Base.Mean() + s.Offset }

// Mixture samples component i with probability Weights[i].
type Mixture struct {
	Components []Dist
	Weights    []float64
}

var _ Dist = Mixture{}

// NewMixture validates and constructs a mixture distribution.
func NewMixture(components []Dist, weights []float64) (Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return Mixture{}, fmt.Errorf("stats: mixture needs matching components/weights, got %d/%d",
			len(components), len(weights))
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			return Mixture{}, fmt.Errorf("stats: negative mixture weight %v", w)
		}
		sum += w
	}
	if sum <= 0 {
		return Mixture{}, fmt.Errorf("stats: mixture weights sum to %v", sum)
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / sum
	}
	cs := make([]Dist, len(components))
	copy(cs, components)
	return Mixture{Components: cs, Weights: norm}, nil
}

// Sample draws from the mixture.
func (m Mixture) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Components[i].Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

// Mean reports the weighted mean of the components.
func (m Mixture) Mean() float64 {
	mean := 0.0
	for i, c := range m.Components {
		mean += m.Weights[i] * c.Mean()
	}
	return mean
}
