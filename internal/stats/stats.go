// Package stats implements the descriptive statistics, online moment
// accumulators, parametric distributions, and histograms used
// throughout the reproduction — including LogHist, the log-bucketed
// latency histogram behind every p50/p90/p99/p999 SLO summary the load
// generator and the autoscaling control loop report. Everything is
// stdlib-only and deterministic when driven by a seeded rand.Rand.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased (n-1) sample variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: variance needs >=2 samples, got %d", len(xs))
	}
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV, nil
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	SD     float64
	Min    float64
	Max    float64
	P5     float64
	P25    float64
	P75    float64
	P95    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs)}
	var err error
	if s.Mean, err = Mean(xs); err != nil {
		return Summary{}, err
	}
	if s.Median, err = Median(xs); err != nil {
		return Summary{}, err
	}
	if len(xs) >= 2 {
		if s.SD, err = StdDev(xs); err != nil {
			return Summary{}, err
		}
	}
	if s.Min, s.Max, err = MinMax(xs); err != nil {
		return Summary{}, err
	}
	for _, q := range []struct {
		p   float64
		dst *float64
	}{{5, &s.P5}, {25, &s.P25}, {75, &s.P75}, {95, &s.P95}} {
		if *q.dst, err = Percentile(xs, q.p); err != nil {
			return Summary{}, err
		}
	}
	return s, nil
}

// Welford accumulates mean and variance online in a single pass. The zero
// value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N reports the number of accumulated samples.
func (w *Welford) N() int { return w.n }

// Mean reports the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the unbiased running variance (0 with fewer than two
// samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// SD reports the running standard deviation.
func (w *Welford) SD() float64 { return math.Sqrt(w.Variance()) }

// Min reports the smallest accumulated sample (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max reports the largest accumulated sample (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Merge folds another accumulator into w (parallel Welford combination).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n, w.mean, w.m2 = n, mean, m2
}

// Histogram counts samples into equal-width bins over [Lo, Hi). Samples
// outside the range are clamped into the edge bins so no data is dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs >=1 bin, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bin := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.total++
}

// Total reports the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}
