package stats

import (
	"math"
	"math/rand"
	"testing"
)

func sampleN(d Dist, n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	return xs
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 6}
	if u.Mean() != 4 {
		t.Fatalf("Mean = %v, want 4", u.Mean())
	}
	xs := sampleN(u, 10000, 1)
	for _, x := range xs {
		if x < 2 || x >= 6 {
			t.Fatalf("sample %v out of [2,6)", x)
		}
	}
	m, _ := Mean(xs)
	if math.Abs(m-4) > 0.1 {
		t.Fatalf("empirical mean %v too far from 4", m)
	}
}

func TestExponential(t *testing.T) {
	e := Exponential{Rate: 4}
	if e.Mean() != 0.25 {
		t.Fatalf("Mean = %v, want 0.25", e.Mean())
	}
	xs := sampleN(e, 20000, 2)
	m, _ := Mean(xs)
	if math.Abs(m-0.25) > 0.01 {
		t.Fatalf("empirical mean %v too far from 0.25", m)
	}
	for _, x := range xs {
		if x < 0 {
			t.Fatalf("negative exponential sample %v", x)
		}
	}
}

func TestNormal(t *testing.T) {
	n := Normal{Mu: 7, Sigma: 2}
	if n.Mean() != 7 {
		t.Fatalf("Mean = %v", n.Mean())
	}
	xs := sampleN(n, 20000, 3)
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	if math.Abs(m-7) > 0.1 || math.Abs(sd-2) > 0.1 {
		t.Fatalf("empirical mean/sd = %v/%v, want 7/2", m, sd)
	}
}

func TestLogNormalCalibration(t *testing.T) {
	// Calibrate to the paper's operator beta LTE aggregates: mean 36 ms,
	// median 25 ms.
	l, err := LogNormalFromMeanMedian(36, 25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Mean()-36) > 1e-9 {
		t.Fatalf("analytic mean = %v, want 36", l.Mean())
	}
	if math.Abs(l.Median()-25) > 1e-9 {
		t.Fatalf("analytic median = %v, want 25", l.Median())
	}
	xs := sampleN(l, 60000, 4)
	m, _ := Mean(xs)
	md, _ := Median(xs)
	if math.Abs(m-36)/36 > 0.05 {
		t.Fatalf("empirical mean %v too far from 36", m)
	}
	if math.Abs(md-25)/25 > 0.05 {
		t.Fatalf("empirical median %v too far from 25", md)
	}
	if l.SD() <= 0 {
		t.Fatal("SD should be positive")
	}
}

func TestLogNormalCalibrationErrors(t *testing.T) {
	if _, err := LogNormalFromMeanMedian(10, 10); err == nil {
		t.Fatal("mean == median should fail")
	}
	if _, err := LogNormalFromMeanMedian(5, -1); err == nil {
		t.Fatal("negative median should fail")
	}
}

func TestDegenerate(t *testing.T) {
	d := Degenerate{Value: 3.14}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 3.14 {
			t.Fatal("Degenerate must always return Value")
		}
	}
	if d.Mean() != 3.14 {
		t.Fatal("Degenerate mean must be Value")
	}
}

func TestShifted(t *testing.T) {
	s := Shifted{Base: Normal{Mu: 0, Sigma: 1}, Offset: 100, Floor: 99}
	xs := sampleN(s, 5000, 5)
	for _, x := range xs {
		if x < 99 {
			t.Fatalf("sample %v below floor", x)
		}
	}
	if math.Abs(s.Mean()-100) > 1e-12 {
		t.Fatalf("Mean = %v, want 100", s.Mean())
	}
}

func TestMixture(t *testing.T) {
	m, err := NewMixture(
		[]Dist{Degenerate{Value: 1}, Degenerate{Value: 11}},
		[]float64{3, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mean()-3.5) > 1e-12 {
		t.Fatalf("Mean = %v, want 3.5 (weights normalized)", m.Mean())
	}
	xs := sampleN(m, 40000, 6)
	ones := 0
	for _, x := range xs {
		switch x {
		case 1:
			ones++
		case 11:
		default:
			t.Fatalf("unexpected sample %v", x)
		}
	}
	frac := float64(ones) / float64(len(xs))
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("component-1 fraction %v, want ~0.75", frac)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Fatal("empty mixture should fail")
	}
	if _, err := NewMixture([]Dist{Degenerate{}}, []float64{-1}); err == nil {
		t.Fatal("negative weight should fail")
	}
	if _, err := NewMixture([]Dist{Degenerate{}}, []float64{0}); err == nil {
		t.Fatal("zero-sum weights should fail")
	}
	if _, err := NewMixture([]Dist{Degenerate{}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestMetrics(t *testing.T) {
	if got := SymmetricAccuracy(10, 10); got != 1 {
		t.Fatalf("exact match accuracy = %v", got)
	}
	if got := SymmetricAccuracy(0, 0); got != 1 {
		t.Fatalf("both-zero accuracy = %v", got)
	}
	if got := SymmetricAccuracy(5, 10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("accuracy(5,10) = %v, want 0.5", got)
	}
	if got := SymmetricAccuracy(10, 5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("accuracy must be symmetric, got %v", got)
	}
	if got := SymmetricAccuracy(-10, 10); got != 0 {
		t.Fatalf("opposite signs should clamp to 0, got %v", got)
	}
	if got := MeanSymmetricAccuracy([]float64{5, 10}, []float64{10, 10}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("mean accuracy = %v, want 0.75", got)
	}
	if got := MeanSymmetricAccuracy(nil, nil); got != 0 {
		t.Fatalf("empty mean accuracy = %v, want 0", got)
	}
	if got := MAPE([]float64{110}, []float64{100}); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE = %v, want 0.1", got)
	}
	if got := MAPE([]float64{1}, []float64{0}); got != 0 {
		t.Fatalf("MAPE with zero actual should skip, got %v", got)
	}
	if got := RMSE([]float64{3, 4}, []float64{0, 0}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
}
