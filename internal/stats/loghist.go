package stats

import (
	"fmt"
	"math"
)

// LogHist is a log-bucketed histogram for positive samples (latencies in
// milliseconds, throughputs, …): bucket i spans [Lo·Growth^i,
// Lo·Growth^(i+1)), so quantile estimates carry a bounded relative error
// of at most Growth−1 regardless of the sample's dynamic range. Unlike
// the fixed-width Histogram it resolves sub-millisecond task latencies
// and multi-second tail latencies in the same accumulator, which is what
// the load generator's p50/p90/p99/p999 SLO report needs. The zero value
// is not usable; construct with NewLogHist or NewLatencyHist.
type LogHist struct {
	lo        float64
	growth    float64
	logGrowth float64
	counts    []int

	total int
	sum   float64
	minV  float64
	maxV  float64
}

// NewLogHist builds a histogram whose buckets grow geometrically by
// `growth` from lo until they cover hi. Samples below lo land in the
// first bucket, samples at or above hi in the last; nothing is dropped.
func NewLogHist(lo, hi, growth float64) (*LogHist, error) {
	if !(lo > 0) || math.IsInf(lo, 0) {
		return nil, fmt.Errorf("stats: loghist lo %v must be positive and finite", lo)
	}
	if !(hi > lo) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("stats: loghist range [%v,%v) is empty", lo, hi)
	}
	if !(growth > 1) || math.IsInf(growth, 0) {
		return nil, fmt.Errorf("stats: loghist growth %v must be > 1", growth)
	}
	n := int(math.Ceil(math.Log(hi/lo) / math.Log(growth)))
	if n < 1 {
		n = 1
	}
	return &LogHist{
		lo:        lo,
		growth:    growth,
		logGrowth: math.Log(growth),
		counts:    make([]int, n),
	}, nil
}

// NewLatencyHist returns the repository's standard latency histogram:
// 10 µs to 10 min in milliseconds at ≤5% relative error per bucket.
func NewLatencyHist() *LogHist {
	h, err := NewLogHist(0.01, 600_000, 1.05)
	if err != nil {
		// Fixed literals; a failure is a programming error.
		panic(err)
	}
	return h
}

// bucket maps a sample to its bucket index, clamping into range.
func (h *LogHist) bucket(x float64) int {
	if x < h.lo {
		return 0
	}
	i := int(math.Log(x/h.lo) / h.logGrowth)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// Add records one sample. Non-positive and NaN samples are clamped into
// the first bucket so error paths that record 0 latency still count.
func (h *LogHist) Add(x float64) {
	if math.IsNaN(x) {
		x = 0
	}
	h.counts[h.bucket(x)]++
	h.total++
	h.sum += x
	if h.total == 1 {
		h.minV, h.maxV = x, x
		return
	}
	if x < h.minV {
		h.minV = x
	}
	if x > h.maxV {
		h.maxV = x
	}
}

// Total reports the number of recorded samples.
func (h *LogHist) Total() int { return h.total }

// Mean reports the exact running mean (0 when empty).
func (h *LogHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min reports the smallest recorded sample (0 when empty).
func (h *LogHist) Min() float64 { return h.minV }

// Max reports the largest recorded sample (0 when empty).
func (h *LogHist) Max() float64 { return h.maxV }

// Quantile estimates the q-th quantile (q in [0,1]) as the geometric
// midpoint of the bucket holding the q-th ranked sample, clamped to the
// exact observed min/max so the tails never overshoot the data.
func (h *LogHist) Quantile(q float64) (float64, error) {
	if h.total == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	// The extremes are tracked exactly; don't pay bucket error there.
	if q == 0 {
		return h.minV, nil
	}
	if q == 1 {
		return h.maxV, nil
	}
	rank := int(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	seen := 0
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			lower := h.lo * math.Pow(h.growth, float64(i))
			upper := lower * h.growth
			v := math.Sqrt(lower * upper)
			if v < h.minV {
				v = h.minV
			}
			if v > h.maxV {
				v = h.maxV
			}
			return v, nil
		}
	}
	return h.maxV, nil
}

// Merge folds another histogram into h. The two must share a bucket
// layout (same lo, growth, and bucket count).
func (h *LogHist) Merge(o *LogHist) error {
	if o == nil || o.total == 0 {
		return nil
	}
	if h.lo != o.lo || h.growth != o.growth || len(h.counts) != len(o.counts) {
		return fmt.Errorf("stats: loghist layouts differ (lo %v/%v growth %v/%v bins %d/%d)",
			h.lo, o.lo, h.growth, o.growth, len(h.counts), len(o.counts))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 {
		h.minV, h.maxV = o.minV, o.maxV
	} else {
		if o.minV < h.minV {
			h.minV = o.minV
		}
		if o.maxV > h.maxV {
			h.maxV = o.maxV
		}
	}
	h.total += o.total
	h.sum += o.sum
	return nil
}
