package stats_test

import (
	"fmt"

	"accelcloud/internal/stats"
)

// ExampleLogHist folds a bimodal latency population — fast cache hits
// and slow tail requests — into one log-bucketed accumulator and reads
// the SLO percentiles back with bounded relative error.
func ExampleLogHist() {
	h := stats.NewLatencyHist() // 10 µs – 10 min, ≤5% error per bucket
	for i := 0; i < 990; i++ {
		h.Add(1.0 + float64(i%10)*0.1) // fast path: 1.0–1.9 ms
	}
	for i := 0; i < 10; i++ {
		h.Add(250) // tail: 250 ms
	}
	p50, _ := h.Quantile(0.50)
	p99, _ := h.Quantile(0.99)
	fmt.Printf("n=%d p50=%.1f ms p99=%.1f ms max=%.0f ms\n", h.Total(), p50, p99, h.Max())
	// Output:
	// n=1000 p50=1.5 ms p99=1.9 ms max=250 ms
}

// ExampleLogHist_merge shows per-worker histograms folding into one
// digest — how parallel load-generation shards combine their results.
func ExampleLogHist_merge() {
	a, b := stats.NewLatencyHist(), stats.NewLatencyHist()
	for i := 0; i < 100; i++ {
		a.Add(2)
		b.Add(8)
	}
	if err := a.Merge(b); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("n=%d mean=%.0f ms min=%.0f max=%.0f\n", a.Total(), a.Mean(), a.Min(), a.Max())
	// Output:
	// n=200 mean=5 ms min=2 max=8
}
