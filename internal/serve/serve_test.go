package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/tasks"
)

// fakeExec is a controllable Executor: Execute blocks until release is
// closed (when set), every call is counted, and requests whose Size
// equals failSize come back with a per-call Error (the in-band failure
// shape a surrogate uses for e.g. dalvik slot saturation).
type fakeExec struct {
	mu       sync.Mutex
	release  chan struct{}
	failSize int
	execs    atomic.Int64
	batches  atomic.Int64
	batchLen []int
}

func (f *fakeExec) Execute(ctx context.Context, req rpc.ExecuteRequest) (rpc.ExecuteResponse, error) {
	f.execs.Add(1)
	if f.release != nil {
		select {
		case <-f.release:
		case <-ctx.Done():
			return rpc.ExecuteResponse{}, ctx.Err()
		}
	}
	return rpc.ExecuteResponse{Server: "fake", Result: tasks.Result{Task: req.State.Task}}, nil
}

func (f *fakeExec) ExecuteBatch(ctx context.Context, reqs []rpc.ExecuteRequest) ([]rpc.ExecuteResponse, error) {
	f.batches.Add(1)
	f.mu.Lock()
	f.batchLen = append(f.batchLen, len(reqs))
	f.mu.Unlock()
	if f.release != nil {
		select {
		case <-f.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make([]rpc.ExecuteResponse, len(reqs))
	for i, r := range reqs {
		if f.failSize != 0 && r.State.Size == f.failSize {
			out[i] = rpc.ExecuteResponse{Server: "fake", Error: "task failed"}
			continue
		}
		out[i] = rpc.ExecuteResponse{Server: "fake", Result: tasks.Result{Task: r.State.Task}}
	}
	return out, nil
}

func req(task string) rpc.ExecuteRequest {
	return rpc.ExecuteRequest{State: tasks.State{Task: task, Size: 1}}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Limit: -1},
		{Limit: 1, Depth: -1},
		{Limit: 1, Linger: -time.Millisecond},
		{MaxBatch: 4}, // batching without a limit
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted an unusable config", c)
		}
	}
	if err := (Config{Limit: 2, Depth: 8, MaxBatch: 4, Linger: time.Millisecond}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDisabledConfigReturnsNilQueue(t *testing.T) {
	q, err := New(Config{}, &fakeExec{})
	if err != nil {
		t.Fatal(err)
	}
	if q != nil {
		t.Fatal("Limit 0 should disable the queue layer")
	}
	// The nil queue must be Close-safe: the router closes queues
	// unconditionally on Remove/Evict.
	q.Close()
}

func TestSubmitExecutes(t *testing.T) {
	ex := &fakeExec{}
	q, err := New(Config{Limit: 2, Depth: 4}, ex)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	resp, err := q.Submit(context.Background(), req("minimax"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Server != "fake" {
		t.Fatalf("resp = %+v", resp)
	}
	if got := ex.execs.Load(); got != 1 {
		t.Fatalf("executes = %d", got)
	}
}

// TestQueueFullRejects fills the limit with blocked executions and the
// depth with waiting jobs, then proves the next Submit sheds with
// ErrQueueFull instead of blocking, and that the queue recovers after
// the backlog drains.
func TestQueueFullRejects(t *testing.T) {
	release := make(chan struct{})
	ex := &fakeExec{release: release}
	const limit, depth = 2, 3
	q, err := New(Config{Limit: limit, Depth: depth}, ex)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	var wg sync.WaitGroup
	errs := make([]error, limit+depth)
	for i := 0; i < limit+depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = q.Submit(context.Background(), req("minimax"))
		}(i)
	}
	// Wait until the dispatchers hold `limit` jobs and `depth` more wait.
	deadline := time.Now().Add(2 * time.Second)
	for q.Queued() < depth || q.Executing() < limit {
		if time.Now().After(deadline) {
			t.Fatalf("queue never saturated: queued=%d executing=%d", q.Queued(), q.Executing())
		}
		time.Sleep(time.Millisecond)
	}
	if !q.Saturated() {
		t.Fatal("Saturated() = false at full depth")
	}
	if _, err := q.Submit(context.Background(), req("minimax")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Submit err = %v, want ErrQueueFull", err)
	}
	if q.Rejected() != 1 {
		t.Fatalf("rejected = %d", q.Rejected())
	}

	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if q.Saturated() {
		t.Fatal("still saturated after drain")
	}
	if _, err := q.Submit(context.Background(), req("minimax")); err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
}

// TestBatchCoalesces backlogs 8 same-task jobs behind one blocked
// dispatcher and proves they execute as one ExecuteBatch round trip.
func TestBatchCoalesces(t *testing.T) {
	release := make(chan struct{})
	ex := &fakeExec{release: release}
	q, err := New(Config{Limit: 1, Depth: 16, MaxBatch: 8, Linger: 50 * time.Millisecond}, ex)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	// Plug the single dispatcher with one job...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = q.Submit(context.Background(), req("plug")) }()
	for q.Executing() == 0 {
		time.Sleep(time.Millisecond)
	}
	// ...then backlog 8 homogeneous jobs while it is busy.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); _, _ = q.Submit(context.Background(), req("minimax")) }()
	}
	for q.Queued() < 8 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := ex.batches.Load(); got != 1 {
		t.Fatalf("batches = %d, want 1 (batch lens %v)", got, ex.batchLen)
	}
	if len(ex.batchLen) != 1 || ex.batchLen[0] != 8 {
		t.Fatalf("batch lens = %v, want [8]", ex.batchLen)
	}
	if q.Batches() != 1 || q.Coalesced() != 8 {
		t.Fatalf("gauges: batches=%d coalesced=%d", q.Batches(), q.Coalesced())
	}
}

// TestBatchBreaksOnTaskChange backlogs a heterogeneous run and proves
// the dispatcher never mixes tasks in one batch: the odd task carries
// over into its own dispatch.
func TestBatchBreaksOnTaskChange(t *testing.T) {
	release := make(chan struct{})
	ex := &fakeExec{release: release}
	q, err := New(Config{Limit: 1, Depth: 16, MaxBatch: 8, Linger: 50 * time.Millisecond}, ex)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = q.Submit(context.Background(), req("plug")) }()
	for q.Executing() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Backlog must land in order: 3×matmul, then 1×minimax.
	submit := func(task string) {
		wg.Add(1)
		go func() { defer wg.Done(); _, _ = q.Submit(context.Background(), req(task)) }()
		want := q.Queued() + 1
		for q.Queued() < want {
			time.Sleep(100 * time.Microsecond)
		}
	}
	submit("matmul")
	submit("matmul")
	submit("matmul")
	submit("minimax")
	close(release)
	wg.Wait()

	ex.mu.Lock()
	lens := append([]int(nil), ex.batchLen...)
	ex.mu.Unlock()
	// One 3-job matmul batch; plug and minimax ran as singletons.
	if len(lens) != 1 || lens[0] != 3 {
		t.Fatalf("batch lens = %v, want [3]", lens)
	}
	if got := ex.execs.Load(); got != 2 {
		t.Fatalf("singleton executes = %d, want 2", got)
	}
}

func TestLingerFlushesShortBatch(t *testing.T) {
	ex := &fakeExec{}
	q, err := New(Config{Limit: 1, Depth: 16, MaxBatch: 8, Linger: 5 * time.Millisecond}, ex)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	// A lone job must not wait for a full batch: the linger expires and
	// it executes as a singleton well before any 8-job batch could form.
	start := time.Now()
	if _, err := q.Submit(context.Background(), req("minimax")); err != nil {
		t.Fatal(err)
	}
	if wait := time.Since(start); wait > time.Second {
		t.Fatalf("lone submit waited %v", wait)
	}
	if ex.batches.Load() != 0 {
		t.Fatal("lone job rode a batch")
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	q, err := New(Config{Limit: 1, Depth: 2}, &fakeExec{})
	if err != nil {
		t.Fatal(err)
	}
	q.Close()
	q.Close() // idempotent
	if _, err := q.Submit(context.Background(), req("minimax")); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}

func TestSubmitHonorsContext(t *testing.T) {
	release := make(chan struct{})
	ex := &fakeExec{release: release}
	q, err := New(Config{Limit: 1, Depth: 4}, ex)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	// Registered after q.Close so it runs first: the dispatcher must
	// unblock before Close waits on it.
	defer close(release)
	// Plug the dispatcher, then submit with an already-cancelled ctx.
	go func() { _, _ = q.Submit(context.Background(), req("plug")) }()
	for q.Executing() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.Submit(ctx, req("minimax")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit = %v, want context.Canceled", err)
	}
}

// TestBatchPropagatesPerCallErrors proves a failed execution inside a
// batch surfaces as a Submit error, mirroring Execute's contract — not
// as a silent success with a zero Result.
func TestBatchPropagatesPerCallErrors(t *testing.T) {
	release := make(chan struct{})
	ex := &fakeExec{release: release, failSize: 99}
	q, err := New(Config{Limit: 1, Depth: 16, MaxBatch: 8, Linger: 50 * time.Millisecond}, ex)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = q.Submit(context.Background(), req("plug")) }()
	for q.Executing() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Backlog one healthy and one poisoned job; they ride one batch.
	var okErr, badErr error
	wg.Add(2)
	go func() { defer wg.Done(); _, okErr = q.Submit(context.Background(), req("minimax")) }()
	go func() {
		defer wg.Done()
		bad := req("minimax")
		bad.State.Size = 99
		_, badErr = q.Submit(context.Background(), bad)
	}()
	for q.Queued() < 2 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := ex.batches.Load(); got != 1 {
		t.Fatalf("batches = %d, want 1 (batch lens %v)", got, ex.batchLen)
	}
	if okErr != nil {
		t.Fatalf("healthy batch member: %v", okErr)
	}
	if badErr == nil {
		t.Fatal("failed batch member returned err = nil (silent empty success)")
	}
}

// TestCancelledJobDoesNotPoisonBatch enqueues a job, cancels it, then
// backlogs live followers behind it: the dead job must be dropped with
// its own ctx.Err() instead of leading the batch on a cancelled
// context and sinking every follower.
func TestCancelledJobDoesNotPoisonBatch(t *testing.T) {
	release := make(chan struct{})
	ex := &fakeExec{release: release}
	q, err := New(Config{Limit: 1, Depth: 16, MaxBatch: 8, Linger: 50 * time.Millisecond}, ex)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = q.Submit(context.Background(), req("plug")) }()
	for q.Executing() == 0 {
		time.Sleep(time.Millisecond)
	}
	// First in the queue — the would-be batch lead — then cancelled.
	cctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = q.Submit(cctx, req("minimax")) }()
	for q.Queued() < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	// Live followers stuck behind the dead lead.
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) { defer wg.Done(); _, errs[i] = q.Submit(context.Background(), req("minimax")) }(i)
	}
	for q.Queued() < 4 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("follower %d behind cancelled lead: %v", i, err)
		}
	}
}

func TestErrQueueFullClassifiesClientSide(t *testing.T) {
	// The serving contract: the typed rejection must survive rpc's
	// queue-full classifier so retries pick the short backoff.
	if !rpc.IsQueueFull(ErrQueueFull) {
		t.Fatal("rpc.IsQueueFull(ErrQueueFull) = false")
	}
}

func TestSubmitTimedBreakdown(t *testing.T) {
	// One busy dispatcher: the second job measurably waits in the
	// queue; with batching on, the lead also pays the linger window.
	release := make(chan struct{})
	fe := &fakeExec{release: release}
	q, err := New(Config{Limit: 1, Depth: 8, MaxBatch: 4, Linger: 5 * time.Millisecond}, fe)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = q.Submit(context.Background(), req("plug")) }()
	for q.Executing() == 0 {
		time.Sleep(time.Millisecond)
	}
	var timing Timing
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, timing, _ = q.SubmitTimed(context.Background(), req("sieve"))
	}()
	for q.Queued() < 1 {
		time.Sleep(time.Millisecond)
	}
	// Hold the follower queued for a visible interval before release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if timing.QueueMs < 10 {
		t.Fatalf("QueueMs = %v, want >= 10 (job waited ~20ms behind a busy dispatcher)", timing.QueueMs)
	}
	if timing.LingerMs < 4 {
		t.Fatalf("LingerMs = %v, want >= 4 (lead pays the 5ms fill window)", timing.LingerMs)
	}
	if timing.QueueMs > 5_000 || timing.LingerMs > 5_000 {
		t.Fatalf("implausible timing %+v", timing)
	}
}

func TestSubmitTimedZeroOnReject(t *testing.T) {
	release := make(chan struct{})
	q, err := New(Config{Limit: 1, Depth: 1}, &fakeExec{release: release})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = q.Submit(context.Background(), req("plug")) }()
	for q.Executing() == 0 {
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go func() { defer wg.Done(); _, _ = q.Submit(context.Background(), req("plug")) }()
	for q.Queued() < 1 {
		time.Sleep(time.Millisecond)
	}
	_, timing, err := q.SubmitTimed(context.Background(), req("plug"))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected queue-full rejection, got %v", err)
	}
	if timing != (Timing{}) {
		t.Fatalf("rejected submit reported timing %+v", timing)
	}
	close(release)
	wg.Wait()
}
