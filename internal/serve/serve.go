// Package serve is the per-backend admission layer of the serving
// stack: a bounded queue in front of each surrogate (kserve's
// queue-proxy shape) that enforces a concurrency limit, sheds load
// with a typed ErrQueueFull once the queue is full, and dynamically
// batches homogeneous queued tasks into one batch execution so the
// per-call protocol overhead amortizes across the batch.
//
// The router owns one Queue per backend entry. Pick consults
// Queue.Saturated to steer around full backends; the frontend submits
// picked work through Queue.Submit instead of calling the backend
// client directly. Everything is in-process and allocation-light: the
// queue is a buffered channel, dispatchers are Limit standing
// goroutines, and the gauges are atomics read by /stats.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"accelcloud/internal/rpc"
)

// Config sizes one backend's admission queue.
type Config struct {
	// Limit is the number of concurrent dispatches to the backend
	// (standing dispatcher goroutines). 0 disables the queue layer
	// entirely — calls go straight to the client, as before PR 7.
	Limit int
	// Depth is the number of admitted-but-not-yet-dispatched requests
	// the queue holds before Submit rejects with ErrQueueFull. 0
	// selects DefaultDepth when Limit > 0.
	Depth int
	// MaxBatch > 1 enables dynamic batching: a dispatcher that pulls a
	// job keeps pulling queued jobs for the same task (up to MaxBatch)
	// and executes them as one ExecuteBatch round trip. A job for a
	// different task closes the batch and leads the next one.
	MaxBatch int
	// Linger bounds how long a dispatcher waits for the queue to yield
	// more same-task jobs before executing a short batch. 0 selects
	// DefaultLinger when MaxBatch > 1. Linger only costs latency when
	// the queue is empty; with a backlog the batch fills immediately.
	Linger time.Duration
}

// Defaults applied by New.
const (
	DefaultDepth  = 64
	DefaultLinger = 2 * time.Millisecond
)

// Enabled reports whether the config asks for an admission queue.
func (c Config) Enabled() bool { return c.Limit > 0 }

// Validate rejects unusable shapes.
func (c Config) Validate() error {
	if c.Limit < 0 {
		return fmt.Errorf("serve: concurrency limit %d < 0", c.Limit)
	}
	if c.Depth < 0 {
		return fmt.Errorf("serve: queue depth %d < 0", c.Depth)
	}
	if c.Linger < 0 {
		return fmt.Errorf("serve: linger %v < 0", c.Linger)
	}
	if c.MaxBatch > 1 && c.Limit == 0 {
		return errors.New("serve: batching requires a concurrency limit (set Limit > 0)")
	}
	return nil
}

// ErrQueueFull is the typed backpressure signal: the backend's
// admission queue is at capacity, so the caller should try another
// backend (the router's Pick already skips saturated ones) rather
// than pile on. It wraps rpc.ErrQueueFull so errors.Is classifies it
// in-process, and the message embeds rpc.MsgQueueFull so the
// rejection survives an HTTP 503 hop and rpc.IsQueueFull still
// classifies it client-side.
var ErrQueueFull = fmt.Errorf("serve: %w", rpc.ErrQueueFull)

// ErrClosed reports a Submit against a closed queue.
var ErrClosed = errors.New("serve: queue closed")

// Executor is the downstream the queue dispatches to — in production
// an *rpc.Client aimed at the backend.
type Executor interface {
	Execute(ctx context.Context, req rpc.ExecuteRequest) (rpc.ExecuteResponse, error)
	ExecuteBatch(ctx context.Context, reqs []rpc.ExecuteRequest) ([]rpc.ExecuteResponse, error)
}

// Timing is the queue's per-job wait breakdown, reported alongside the
// response so trace-sampled requests can bill admission-queue wait and
// batch linger as separate span hops.
type Timing struct {
	// QueueMs is enqueue → pulled by a dispatcher.
	QueueMs float64
	// LingerMs is pulled → dispatch started (time spent held open while
	// the batcher coalesced batchmates, or parked as a carry job).
	LingerMs float64
}

type result struct {
	resp   rpc.ExecuteResponse
	timing Timing
	err    error
}

type job struct {
	ctx  context.Context
	req  rpc.ExecuteRequest
	done chan result // buffered 1: dispatchers never block on delivery

	enq    time.Time // stamped by Submit
	pulled time.Time // stamped when a dispatcher takes it off the channel
}

// Queue is one backend's bounded admission queue plus its dispatcher
// pool. Submit is safe for concurrent use; Close is idempotent.
type Queue struct {
	cfg  Config
	exec Executor

	jobs   chan *job
	queued atomic.Int64 // jobs admitted, not yet pulled by a dispatcher

	executing atomic.Int64 // dispatches in flight (a batch counts once)
	batches   atomic.Int64 // multi-job dispatches executed
	coalesced atomic.Int64 // jobs that rode inside multi-job dispatches
	rejected  atomic.Int64 // Submits refused with ErrQueueFull

	// mu makes the closed-check + enqueue in Submit atomic with the
	// drain in Close: Submits enqueue under the read lock, the drain
	// runs under the write lock, so no job can slip into the channel
	// after the drain has already emptied it.
	mu        sync.RWMutex
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a queue and starts its cfg.Limit dispatchers. Returns nil
// when the config does not enable the queue layer.
func New(cfg Config, exec Executor) (*Queue, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if cfg.Depth == 0 {
		cfg.Depth = DefaultDepth
	}
	if cfg.MaxBatch > 1 && cfg.Linger == 0 {
		cfg.Linger = DefaultLinger
	}
	q := &Queue{
		cfg:    cfg,
		exec:   exec,
		jobs:   make(chan *job, cfg.Depth),
		closed: make(chan struct{}),
	}
	q.wg.Add(cfg.Limit)
	for i := 0; i < cfg.Limit; i++ {
		go q.dispatch()
	}
	return q, nil
}

// Config echoes the effective (default-filled) configuration.
func (q *Queue) Config() Config { return q.cfg }

// Queued is the current number of admitted-but-undispatched jobs.
func (q *Queue) Queued() int { return int(q.queued.Load()) }

// Executing is the current number of in-flight dispatches.
func (q *Queue) Executing() int { return int(q.executing.Load()) }

// Rejected counts Submits refused with ErrQueueFull.
func (q *Queue) Rejected() int64 { return q.rejected.Load() }

// Batches and Coalesced count multi-job dispatches and the jobs that
// rode in them — the batching efficiency numerator and denominator.
func (q *Queue) Batches() int64   { return q.batches.Load() }
func (q *Queue) Coalesced() int64 { return q.coalesced.Load() }

// Saturated reports whether the queue is at capacity — the router's
// Pick skips backends for which this is true. It is a racy read by
// design (Submit is the hard gate); the steady state under overload
// keeps the queue full, so the signal is stable when it matters.
func (q *Queue) Saturated() bool {
	return int(q.queued.Load()) >= q.cfg.Depth
}

// Submit admits one request and blocks until a dispatcher executes it
// (possibly inside a batch) or ctx is done. A full queue rejects
// immediately with ErrQueueFull.
func (q *Queue) Submit(ctx context.Context, req rpc.ExecuteRequest) (rpc.ExecuteResponse, error) {
	resp, _, err := q.SubmitTimed(ctx, req)
	return resp, err
}

// SubmitTimed is Submit plus the job's queue-wait/linger breakdown —
// the serving layer's contribution to a request-scoped trace span.
// The Timing is zero when the call failed before dispatch.
func (q *Queue) SubmitTimed(ctx context.Context, req rpc.ExecuteRequest) (rpc.ExecuteResponse, Timing, error) {
	j := &job{ctx: ctx, req: req, done: make(chan result, 1), enq: time.Now()}
	q.mu.RLock()
	select {
	case <-q.closed:
		q.mu.RUnlock()
		return rpc.ExecuteResponse{}, Timing{}, ErrClosed
	default:
	}
	q.queued.Add(1)
	select {
	case q.jobs <- j:
		q.mu.RUnlock()
	default:
		q.mu.RUnlock()
		q.queued.Add(-1)
		q.rejected.Add(1)
		return rpc.ExecuteResponse{}, Timing{}, ErrQueueFull
	}
	select {
	case r := <-j.done:
		return r.resp, r.timing, r.err
	case <-ctx.Done():
		// The job stays queued; its dispatcher drops it with ctx.Err()
		// instead of executing it.
		return rpc.ExecuteResponse{}, Timing{}, ctx.Err()
	case <-q.closed:
		// Once enqueued, delivery is guaranteed: a dispatcher runs the
		// job, or Close's drain (serialized against this enqueue by mu)
		// fails it with ErrClosed.
		r := <-j.done
		return r.resp, r.timing, r.err
	}
}

// Close stops the dispatchers and fails any still-queued jobs with
// ErrClosed. In-flight dispatches finish.
func (q *Queue) Close() {
	if q == nil {
		return
	}
	q.closeOnce.Do(func() { close(q.closed) })
	q.wg.Wait()
	// The write lock excludes in-flight enqueues, so when the drain
	// sees an empty channel it stays empty: any later Submit observes
	// closed (it closed before the lock was taken) and never enqueues.
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		select {
		case j := <-q.jobs:
			q.queued.Add(-1)
			j.done <- result{err: ErrClosed}
		default:
			return
		}
	}
}

// dispatch is one standing dispatcher: pull a job, optionally coalesce
// same-task followers up to MaxBatch within Linger, execute.
func (q *Queue) dispatch() {
	defer q.wg.Done()
	var carry *job // heterogeneous job that closed the previous batch
	for {
		var lead *job
		if carry != nil {
			lead, carry = carry, nil
		} else {
			select {
			case lead = <-q.jobs:
				q.queued.Add(-1)
				lead.pulled = time.Now()
			case <-q.closed:
				return
			}
		}
		batch := []*job{lead}
		if q.cfg.MaxBatch > 1 {
			batch, carry = q.fill(batch)
		}
		q.run(batch)
	}
}

// fill coalesces queued jobs for lead's task until the batch is full,
// the linger expires, the queue yields a different task (returned as
// carry), or the queue closes.
func (q *Queue) fill(batch []*job) (full []*job, carry *job) {
	lead := batch[0]
	linger := time.NewTimer(q.cfg.Linger)
	defer linger.Stop()
	for len(batch) < q.cfg.MaxBatch {
		select {
		case next := <-q.jobs:
			q.queued.Add(-1)
			next.pulled = time.Now()
			if next.req.State.Task != lead.req.State.Task {
				return batch, next
			}
			batch = append(batch, next)
		case <-linger.C:
			return batch, nil
		case <-q.closed:
			return batch, nil
		}
	}
	return batch, nil
}

// run executes a batch: singletons via Execute, larger batches via one
// ExecuteBatch round trip whose responses fan back out in order.
func (q *Queue) run(batch []*job) {
	// Drop members whose caller already gave up (their Submit returned
	// ctx.Err()): executing them wastes a backend slot, and a dead job
	// elected batch lead would sink the whole batch with its cancelled
	// context — live followers would see spurious backend failures from
	// one client hang-up. done is buffered, so delivery never blocks.
	live := batch[:0]
	for _, j := range batch {
		if err := j.ctx.Err(); err != nil {
			j.done <- result{err: err}
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	// Bill each job's waits at dispatch start: queue wait is enqueue →
	// pulled, linger is pulled → here (lead jobs pay the full fill
	// window, late joiners only their remainder).
	start := time.Now()
	timingOf := func(j *job) Timing {
		return Timing{
			QueueMs:  float64(j.pulled.Sub(j.enq)) / float64(time.Millisecond),
			LingerMs: float64(start.Sub(j.pulled)) / float64(time.Millisecond),
		}
	}
	q.executing.Add(1)
	defer q.executing.Add(-1)
	if len(live) == 1 {
		j := live[0]
		resp, err := q.exec.Execute(j.ctx, j.req)
		j.done <- result{resp: resp, timing: timingOf(j), err: err}
		return
	}
	q.batches.Add(1)
	q.coalesced.Add(int64(len(live)))
	reqs := make([]rpc.ExecuteRequest, len(live))
	for i, j := range live {
		reqs[i] = j.req
	}
	// The batch rides the (live) lead job's context: its deadline
	// covers the whole dispatch.
	resps, err := q.exec.ExecuteBatch(live[0].ctx, reqs)
	if err != nil || len(resps) != len(live) {
		if err == nil {
			err = fmt.Errorf("serve: batch returned %d results for %d calls", len(resps), len(live))
		}
		for _, j := range live {
			j.done <- result{err: err}
		}
		return
	}
	for i, j := range live {
		r := result{resp: resps[i], timing: timingOf(j)}
		if resps[i].Error != "" {
			// Mirror Execute's contract: a per-call Error inside the
			// batch is a failed call, not a success with a zero Result.
			r.err = fmt.Errorf("rpc: remote: %s", resps[i].Error)
		}
		j.done <- r
	}
}
