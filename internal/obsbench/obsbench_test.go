package obsbench

import (
	"context"
	"strings"
	"testing"
)

// TestRunSmoke drives a downsized run of all three scenarios and pins
// the invariants the benchdiff gates build on: zero allocations on the
// hot-path primitives, a sane overhead ratio, a scraped series set,
// and an exactly reproducible span plan.
func TestRunSmoke(t *testing.T) {
	cfg := Config{Seed: 7, Requests: 60, Workers: 8}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.CounterIncAllocs != 0 || rep.GaugeSetAllocs != 0 || rep.HistObserveAllocs != 0 {
		t.Fatalf("hot-path primitives allocate: counter=%.1f gauge=%.1f hist=%.1f",
			rep.CounterIncAllocs, rep.GaugeSetAllocs, rep.HistObserveAllocs)
	}
	if rep.OffP99Ms <= 0 || rep.OnP99Ms <= 0 || rep.OverheadRatio <= 0 {
		t.Fatalf("A/B arms missing: %+v", rep)
	}
	if rep.SeriesCount == 0 {
		t.Fatal("instrumented run scraped no series")
	}
	if rep.SpansPlanned == 0 || rep.SpansCollected != rep.SpansPlanned {
		t.Fatalf("span capture: planned=%d collected=%d", rep.SpansPlanned, rep.SpansCollected)
	}
	if !strings.HasPrefix(rep.SpanDigest, "fnv1a:") {
		t.Fatalf("span digest %q", rep.SpanDigest)
	}

	// The span plan is a pure function of the seed: a second run must
	// reproduce the digest, the planned count, and the series count.
	again, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.SpanDigest != rep.SpanDigest || again.SpansPlanned != rep.SpansPlanned {
		t.Fatalf("span plan drifted: %d %s then %d %s",
			rep.SpansPlanned, rep.SpanDigest, again.SpansPlanned, again.SpanDigest)
	}
	if again.SeriesCount != rep.SeriesCount {
		t.Fatalf("series count drifted: %d then %d", rep.SeriesCount, again.SeriesCount)
	}
}

// TestReportRoundTrip pins the schema check on the read path.
func TestReportRoundTrip(t *testing.T) {
	rep := &Report{Schema: Schema, SpanDigest: "fnv1a:0000000000000000"}
	if _, err := ReadReport(strings.NewReader(`{"schema":"bogus"}`)); err == nil {
		t.Fatal("bogus schema accepted")
	}
	var b strings.Builder
	data := `{"schema":"` + Schema + `","spanDigest":"` + rep.SpanDigest + `"}`
	b.WriteString(data)
	got, err := ReadReport(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.SpanDigest != rep.SpanDigest {
		t.Fatalf("round trip lost digest: %q", got.SpanDigest)
	}
}
