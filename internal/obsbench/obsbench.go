// Package obsbench measures the observability layer (internal/obs and
// the request-scoped trace spans) and emits the BENCH_obs.json
// artifact cmd/benchdiff gates:
//
//   - Instrumentation overhead A/B: the same closed-loop offload
//     workload is driven twice against identical hermetic clusters —
//     one built bare, one built WithMetrics so every request pays the
//     counter increments and histogram observations of the hot path.
//     The gated column is the on/off p99 ratio, a within-run ratio
//     measured on one host, against a hard ceiling: instrumentation
//     that shifts tail latency is worse than no instrumentation.
//   - Zero-allocation guards: testing.AllocsPerRun pins Counter.Inc,
//     Gauge.Set, and Histogram.Observe at zero heap allocations per
//     call. Any allocation on these paths would eventually show up as
//     GC pressure in exactly the tail the A/B protects.
//   - Span determinism: a sampled loadgen run (SpanSample > 1) against
//     the instrumented cluster. Which requests carry spans — and the
//     fnv1a digest of the sampled span IDs — is a pure function of
//     the seed, so the digest and the planned count are gated exactly,
//     and an error-free hermetic run must collect every planned span.
//
// The A/B p99s are machine-dependent context; the ratio, the alloc
// counts, the series count, and the span columns are the gates.
package obsbench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accelcloud/internal/loadgen"
	"accelcloud/internal/obs"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
)

// Schema versions the obsbench report format for cmd/benchdiff.
const Schema = "accelcloud/obsbench/v1"

// Config sizes one obsbench run.
type Config struct {
	// Seed roots the deterministic task-state and span streams.
	Seed int64
	// Requests per A/B arm (0 selects 400).
	Requests int
	// Workers is the closed-loop concurrency (0 selects 16).
	Workers int
	// SpanSample is the 1/N span sampling rate of the determinism
	// scenario (0 selects 4).
	SpanSample int
	// Timeout bounds each request (0 selects 30s).
	Timeout time.Duration
}

func (c Config) normalized() Config {
	if c.Requests <= 0 {
		c.Requests = 400
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.SpanSample <= 0 {
		c.SpanSample = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Report is the BENCH_obs.json artifact.
type Report struct {
	Schema     string `json:"schema"`
	Seed       int64  `json:"seed"`
	Requests   int    `json:"requests"`
	Workers    int    `json:"workers"`
	NumCPU     int    `json:"numCPU"`
	GoMaxProcs int    `json:"goMaxProcs"`

	// Instrumentation overhead A/B. The p99s are machine-dependent
	// context; OverheadRatio (on/off) is the gated within-run ratio.
	OffP99Ms      float64 `json:"offP99Ms"`
	OnP99Ms       float64 `json:"onP99Ms"`
	OverheadRatio float64 `json:"overheadRatio"`
	// SeriesCount is how many samples one /metrics scrape of the
	// instrumented front-end rendered — deterministic for a fixed
	// registration set, gated exactly.
	SeriesCount int `json:"seriesCount"`

	// Zero-allocation guards (testing.AllocsPerRun; gated == 0).
	CounterIncAllocs  float64 `json:"counterIncAllocs"`
	GaugeSetAllocs    float64 `json:"gaugeSetAllocs"`
	HistObserveAllocs float64 `json:"histObserveAllocs"`

	// Span determinism: planned count and ID digest are pure functions
	// of the seed (gated exactly); an error-free run collects every
	// planned span.
	SpanSampleEvery int     `json:"spanSampleEvery"`
	SpansPlanned    int     `json:"spansPlanned"`
	SpansCollected  int     `json:"spansCollected"`
	SpanDigest      string  `json:"spanDigest"`
	SpanQueueP99Ms  float64 `json:"spanQueueP99Ms"`
	SpanExecP99Ms   float64 `json:"spanExecP99Ms"`
}

// Summary renders the human-readable table.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "obsbench: %d requests per arm, %d workers\n", r.Requests, r.Workers)
	fmt.Fprintf(&b, "  instrumentation overhead A/B:\n")
	fmt.Fprintf(&b, "    metrics off  p99 %8.2f ms\n", r.OffP99Ms)
	fmt.Fprintf(&b, "    metrics on   p99 %8.2f ms  (ratio %.3f, %d series scraped)\n",
		r.OnP99Ms, r.OverheadRatio, r.SeriesCount)
	fmt.Fprintf(&b, "  zero-alloc guards: counter=%.1f gauge=%.1f histogram=%.1f allocs/op\n",
		r.CounterIncAllocs, r.GaugeSetAllocs, r.HistObserveAllocs)
	fmt.Fprintf(&b, "  spans (1/%d sampling): planned=%d collected=%d digest=%s\n",
		r.SpanSampleEvery, r.SpansPlanned, r.SpansCollected, r.SpanDigest)
	fmt.Fprintf(&b, "    hop p99: queue %.2f ms, exec %.2f ms\n", r.SpanQueueP99Ms, r.SpanExecP99Ms)
	return b.String()
}

// WriteFile writes the JSON report.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport parses a report and verifies its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obsbench: decode report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("obsbench: schema %q, want %q", rep.Schema, Schema)
	}
	return &rep, nil
}

// ReadReportFile parses a report file.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	return ReadReport(f)
}

// Run executes all three scenarios and assembles the report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	rep := &Report{
		Schema:     Schema,
		Seed:       cfg.Seed,
		Requests:   cfg.Requests,
		Workers:    cfg.Workers,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	measureAllocs(rep)
	if err := runOverheadAB(ctx, cfg, rep); err != nil {
		return nil, err
	}
	if err := runSpanDeterminism(ctx, cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// measureAllocs pins the hot-path primitives at zero heap allocations
// per operation. The registrations happen once, outside the measured
// closure — exactly how instrumented request paths use them.
func measureAllocs(rep *Report) {
	reg := obs.NewRegistry()
	c := reg.Counter("obsbench_counter_total", "alloc guard")
	g := reg.Gauge("obsbench_gauge", "alloc guard")
	h := reg.Histogram("obsbench_hist_ms", "alloc guard")
	rep.CounterIncAllocs = testing.AllocsPerRun(1000, func() { c.Inc() })
	var i int64
	rep.GaugeSetAllocs = testing.AllocsPerRun(1000, func() { i++; g.Set(i) })
	rep.HistObserveAllocs = testing.AllocsPerRun(1000, func() { h.Observe(float64(i)) })
}

// states pre-generates n deterministic fibonacci states so the
// measured loops do no generation work.
func states(seed int64, n int) ([]tasks.State, error) {
	gen := sim.NewRNG(seed).Stream("obsbench-gen")
	out := make([]tasks.State, n)
	for i := range out {
		st, err := tasks.Fibonacci{}.Generate(gen, 12)
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// drive replays sts closed-loop against baseURL and returns the
// latency histogram. Errors abort — both A/B arms are supposed to be
// clean.
func drive(ctx context.Context, baseURL string, workers int, timeout time.Duration, sts []tasks.State) (*stats.LogHist, error) {
	client := rpc.NewClient(baseURL, rpc.WithTimeout(timeout))
	var (
		next   atomic.Int64
		mu     sync.Mutex
		hist   = stats.NewLatencyHist()
		wg     sync.WaitGroup
		runErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(sts) || ctx.Err() != nil {
					return
				}
				start := time.Now()
				_, err := client.Offload(ctx, rpc.OffloadRequest{
					UserID: w, Group: 1, BatteryLevel: 0.9, State: sts[i],
				})
				ms := float64(time.Since(start)) / float64(time.Millisecond)
				mu.Lock()
				if err != nil && runErr == nil {
					runErr = err
				}
				hist.Add(ms)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if runErr != nil {
		return nil, fmt.Errorf("obsbench: drive: %w", runErr)
	}
	return hist, nil
}

// abTrials is the number of interleaved off/on passes the overhead A/B
// runs; each arm's p99 is the best of its trials. A single pass's p99
// is the handful of worst samples out of Requests, so one scheduler
// hiccup on a shared runner can swing the ratio past the ceiling;
// best-of-N of interleaved passes measures the instrumentation, not
// the neighbors.
const abTrials = 3

// runOverheadAB drives the same closed-loop workload against a bare
// cluster and an instrumented one — interleaved, best of abTrials per
// arm — and records the p99 ratio plus one scrape of the instrumented
// registry.
func runOverheadAB(ctx context.Context, cfg Config, rep *Report) error {
	sts, err := states(cfg.Seed, cfg.Requests)
	if err != nil {
		return err
	}
	ccfg := loadgen.ClusterConfig{Groups: 1, SurrogatesPerGroup: 2, QueueLimit: cfg.Workers, QueueDepth: 4 * cfg.Requests}

	off, err := loadgen.StartCluster(ccfg)
	if err != nil {
		return err
	}
	defer off.Close()
	reg := obs.NewRegistry()
	onCfg := ccfg
	onCfg.Metrics = reg
	on, err := loadgen.StartCluster(onCfg)
	if err != nil {
		return err
	}
	defer on.Close()

	// Both arms get an unmeasured warm-up pass so neither absorbs the
	// cluster's lazy-init costs into its first trial.
	warm := sts
	if len(warm) > 64 {
		warm = warm[:64]
	}
	if _, err := drive(ctx, off.URL(), cfg.Workers, cfg.Timeout, warm); err != nil {
		return err
	}
	if _, err := drive(ctx, on.URL(), cfg.Workers, cfg.Timeout, warm); err != nil {
		return err
	}

	offP99, onP99 := math.Inf(1), math.Inf(1)
	for t := 0; t < abTrials; t++ {
		offHist, err := drive(ctx, off.URL(), cfg.Workers, cfg.Timeout, sts)
		if err != nil {
			return err
		}
		if q, err := offHist.Quantile(0.99); err == nil && q < offP99 {
			offP99 = q
		}
		onHist, err := drive(ctx, on.URL(), cfg.Workers, cfg.Timeout, sts)
		if err != nil {
			return err
		}
		if q, err := onHist.Quantile(0.99); err == nil && q < onP99 {
			onP99 = q
		}
	}

	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		return err
	}
	for _, line := range strings.Split(expo.String(), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			rep.SeriesCount++
		}
	}
	rep.OffP99Ms, rep.OnP99Ms = offP99, onP99
	if rep.OffP99Ms > 0 {
		rep.OverheadRatio = rep.OnP99Ms / rep.OffP99Ms
	}
	return nil
}

// runSpanDeterminism replays a sampled loadgen schedule against an
// instrumented cluster and records the span plan columns the gate
// pins exactly.
func runSpanDeterminism(ctx context.Context, cfg Config, rep *Report) error {
	cluster, err := loadgen.StartCluster(loadgen.ClusterConfig{
		Groups: 1, SurrogatesPerGroup: 2, Metrics: obs.NewRegistry(),
		QueueLimit: cfg.Workers, QueueDepth: 4 * cfg.Requests,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	lrep, err := loadgen.Run(ctx, cluster.URL(), loadgen.Config{
		Users: 8, Duration: time.Second, RateHz: 4, Seed: cfg.Seed,
		SpanSample: cfg.SpanSample, Timeout: cfg.Timeout,
	})
	if err != nil {
		return err
	}
	if lrep.Errors > 0 {
		return fmt.Errorf("obsbench: span run had %d errors", lrep.Errors)
	}
	sec := lrep.Spans
	if sec == nil {
		return fmt.Errorf("obsbench: sampled run produced no span section")
	}
	rep.SpanSampleEvery = sec.SampleEvery
	rep.SpansPlanned = sec.Planned
	rep.SpansCollected = sec.Collected
	rep.SpanDigest = sec.Digest
	rep.SpanQueueP99Ms = sec.Hops["queue"].P99Ms
	rep.SpanExecP99Ms = sec.Hops["exec"].P99Ms
	return nil
}
