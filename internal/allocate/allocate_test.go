package allocate

import (
	"math"
	"testing"
	"testing/quick"

	"accelcloud/internal/sim"
)

// paperSpecs builds a spec set shaped like the paper's deployment: two
// types per group with different cost efficiency.
func paperSpecs() []Spec {
	return []Spec{
		{TypeName: "t2.nano", Group: 0, CostPerHour: 0.0063, Capacity: 30},
		{TypeName: "t2.small", Group: 0, CostPerHour: 0.025, Capacity: 30},
		{TypeName: "t2.medium", Group: 1, CostPerHour: 0.05, Capacity: 60},
		{TypeName: "t2.large", Group: 1, CostPerHour: 0.101, Capacity: 90},
		{TypeName: "m4.10xlarge", Group: 2, CostPerHour: 2.22, Capacity: 800},
	}
}

func TestSolveBasic(t *testing.T) {
	p := &Problem{
		Specs:   paperSpecs(),
		Demands: []float64{45, 100, 500},
	}
	plan, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("plan should be feasible")
	}
	// Group 0: 2 nanos (60 >= 45, 0.0126) — small is never cheaper.
	if plan.Counts["t2.nano"] != 2 || plan.Counts["t2.small"] != 0 {
		t.Fatalf("group0 counts = %v", plan.Counts)
	}
	// Group 1: demand 100. Options: 2×medium (120 cap, $0.10),
	// 2×large ($0.202), medium+large (150, $0.151). Optimal 2×medium.
	if plan.Counts["t2.medium"] != 2 {
		t.Fatalf("group1 counts = %v", plan.Counts)
	}
	// Group 2: 1×m4.10xlarge.
	if plan.Counts["m4.10xlarge"] != 1 {
		t.Fatalf("group2 counts = %v", plan.Counts)
	}
	wantCost := 2*0.0063 + 2*0.05 + 2.22
	if math.Abs(plan.Cost-wantCost) > 1e-9 {
		t.Fatalf("cost = %v, want %v", plan.Cost, wantCost)
	}
	for g := range p.Demands {
		if plan.GroupCapacity[g] < p.Demands[g] {
			t.Fatalf("group %d capacity %v below demand %v", g, plan.GroupCapacity[g], p.Demands[g])
		}
		if plan.Overprovision[g] != plan.GroupCapacity[g]-p.Demands[g] {
			t.Fatal("overprovision accounting wrong")
		}
	}
	if plan.TotalInstances() != 5 {
		t.Fatalf("total instances = %d, want 5", plan.TotalInstances())
	}
}

func TestSolveRespectsCC(t *testing.T) {
	p := &Problem{
		Specs:   []Spec{{TypeName: "x", Group: 0, CostPerHour: 1, Capacity: 10}},
		Demands: []float64{100},
		CC:      5,
	}
	// Needs 10 instances but cap is 5.
	plan, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Fatal("plan should be infeasible under CC")
	}
	p.CC = 10
	plan, err = Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.Counts["x"] != 10 {
		t.Fatalf("plan = %+v, want 10×x", plan)
	}
}

func TestSolveDefaultCC(t *testing.T) {
	p := &Problem{
		Specs:   []Spec{{TypeName: "x", Group: 0, CostPerHour: 1, Capacity: 1}},
		Demands: []float64{21},
	}
	// Default CC=20 < 21 required instances.
	plan, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Fatal("default CC=20 should make 21 instances infeasible")
	}
}

func TestSolveZeroDemand(t *testing.T) {
	p := &Problem{
		Specs:   paperSpecs(),
		Demands: []float64{0, 0, 0},
	}
	plan, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.TotalInstances() != 0 || plan.Cost != 0 {
		t.Fatalf("zero demand plan = %+v, want empty", plan)
	}
}

func TestSolveHierarchical(t *testing.T) {
	// Group 1's instances can absorb group 0's users in hierarchical
	// mode; with a huge cheap group-1 type, the optimum uses only it.
	p := &Problem{
		Specs: []Spec{
			{TypeName: "weak", Group: 0, CostPerHour: 1.0, Capacity: 10},
			{TypeName: "strong", Group: 1, CostPerHour: 1.5, Capacity: 100},
		},
		Demands:      []float64{50, 50},
		Hierarchical: true,
	}
	plan, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("should be feasible")
	}
	// 1×strong (100 cap ≥ 50+50 total, ≥50 for group 1) at cost 1.5
	// beats 5×weak + 1×strong (6.5).
	if plan.Counts["strong"] != 1 || plan.Counts["weak"] != 0 {
		t.Fatalf("hierarchical plan = %v", plan.Counts)
	}
	// Strict mode must pay for both groups.
	p.Hierarchical = false
	plan, err = Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Counts["weak"] != 5 || plan.Counts["strong"] != 1 {
		t.Fatalf("strict plan = %v", plan.Counts)
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{},
		{Specs: paperSpecs()},
		{Specs: []Spec{{TypeName: "", Group: 0, Capacity: 1}}, Demands: []float64{1}},
		{Specs: []Spec{{TypeName: "x", Group: 5, Capacity: 1}}, Demands: []float64{1}},
		{Specs: []Spec{{TypeName: "x", Group: 0, Capacity: 0}}, Demands: []float64{1}},
		{Specs: []Spec{{TypeName: "x", Group: 0, CostPerHour: -1, Capacity: 1}}, Demands: []float64{1}},
		{Specs: []Spec{{TypeName: "x", Group: 0, Capacity: 1}, {TypeName: "x", Group: 0, Capacity: 2}}, Demands: []float64{1}},
		{Specs: []Spec{{TypeName: "x", Group: 0, Capacity: 1}}, Demands: []float64{-1}},
		{Specs: []Spec{{TypeName: "x", Group: 0, Capacity: 1}}, Demands: []float64{1}, CC: -2},
		{Specs: []Spec{{TypeName: "x", Group: 0, Capacity: 1}}, Demands: []float64{math.NaN()}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestGreedy(t *testing.T) {
	p := &Problem{
		Specs:   paperSpecs(),
		Demands: []float64{45, 100, 500},
	}
	plan, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("greedy should find a feasible plan")
	}
	for g := range p.Demands {
		if plan.GroupCapacity[g] < p.Demands[g] {
			t.Fatalf("greedy under-provisions group %d", g)
		}
	}
	// Optimal is never more expensive than greedy.
	opt, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost > plan.Cost+1e-9 {
		t.Fatalf("ILP cost %v exceeds greedy %v", opt.Cost, plan.Cost)
	}
	if _, err := Greedy(&Problem{Specs: paperSpecs(), Demands: []float64{1}, Hierarchical: true}); err == nil {
		t.Fatal("greedy hierarchical should fail")
	}
}

func TestGreedyInfeasible(t *testing.T) {
	p := &Problem{
		Specs:   []Spec{{TypeName: "x", Group: 0, CostPerHour: 1, Capacity: 1}},
		Demands: []float64{100},
		CC:      5,
	}
	plan, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Fatal("greedy should report infeasible under CC")
	}
	// No candidate for a demanded group.
	p2 := &Problem{
		Specs:   []Spec{{TypeName: "x", Group: 0, CostPerHour: 1, Capacity: 1}},
		Demands: []float64{0, 5},
	}
	plan2, err := Greedy(p2)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Feasible {
		t.Fatal("greedy with no candidates should be infeasible")
	}
}

func TestSingleType(t *testing.T) {
	p := &Problem{
		Specs:   paperSpecs(),
		Demands: []float64{45, 0, 0},
	}
	plan, err := SingleType(p, "t2.nano")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.Counts["t2.nano"] != 2 {
		t.Fatalf("single-type plan = %+v", plan)
	}
	// A type that cannot serve a demanded group is infeasible.
	p.Demands = []float64{45, 10, 0}
	plan, err = SingleType(p, "t2.nano")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Fatal("nano cannot serve group 1 in strict mode")
	}
	// Hierarchical with the top type can serve everything.
	p.Hierarchical = true
	p.Demands = []float64{45, 10, 100}
	plan, err = SingleType(p, "m4.10xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.Counts["m4.10xlarge"] != 1 {
		t.Fatalf("hierarchical single-type plan = %+v", plan)
	}
	if _, err := SingleType(p, "ghost"); err == nil {
		t.Fatal("unknown type should fail")
	}
}

func TestSingleTypeRespectsCC(t *testing.T) {
	p := &Problem{
		Specs:   []Spec{{TypeName: "x", Group: 0, CostPerHour: 1, Capacity: 1}},
		Demands: []float64{30},
	}
	plan, err := SingleType(p, "x")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Fatal("30 instances exceed default CC=20")
	}
}

// Property: on random strict problems, the ILP plan is feasible and never
// more expensive than greedy; both respect CC.
func TestSolveVsGreedyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := sim.NewRNG(seed).Stream("alloc")
		groups := 1 + r.Intn(3)
		p := &Problem{CC: 15 + r.Intn(10)}
		for g := 0; g < groups; g++ {
			p.Demands = append(p.Demands, float64(r.Intn(150)))
			// Two specs per group.
			for v := 0; v < 2; v++ {
				p.Specs = append(p.Specs, Spec{
					TypeName:    string(rune('a'+g)) + string(rune('0'+v)),
					Group:       g,
					CostPerHour: 0.01 + r.Float64()*2,
					Capacity:    float64(10 + r.Intn(100)),
				})
			}
		}
		opt, err := Solve(p)
		if err != nil {
			return false
		}
		grd, err := Greedy(p)
		if err != nil {
			return false
		}
		if opt.Feasible != grd.Feasible && grd.Feasible {
			// Greedy feasible but ILP not — impossible for a correct
			// solver.
			return false
		}
		if !opt.Feasible {
			return true
		}
		if opt.TotalInstances() > p.CC {
			return false
		}
		for g := range p.Demands {
			if opt.GroupCapacity[g] < p.Demands[g]-1e-9 {
				return false
			}
		}
		if grd.Feasible && opt.Cost > grd.Cost+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
