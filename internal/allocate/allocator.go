package allocate

import (
	"errors"
	"fmt"
)

// Allocator is the incremental, reusable-across-slots entry point for
// control loops: the instance specs and cloud cap are validated once at
// construction, and each time slot re-solves only for fresh demands.
// The autoscaling reconciler (internal/autoscale, DESIGN.md §5) calls
// Allocate once per slot; one-shot callers keep using Solve.
//
// An Allocator is not safe for concurrent use; the control loop is the
// single caller by design.
type Allocator struct {
	specs     []Spec
	numGroups int
	cc        int
	// prob is reused across calls; only Demands changes.
	prob Problem
}

// NewAllocator validates the specs against a fixed group count and
// returns a reusable solver. cc of 0 selects DefaultCC.
func NewAllocator(specs []Spec, numGroups, cc int) (*Allocator, error) {
	if numGroups <= 0 {
		return nil, fmt.Errorf("allocate: group count %d <= 0", numGroups)
	}
	a := &Allocator{
		specs:     append([]Spec(nil), specs...),
		numGroups: numGroups,
		cc:        cc,
	}
	a.prob = Problem{
		Specs:   a.specs,
		Demands: make([]float64, numGroups),
		CC:      cc,
	}
	// Validate once with zero demands; per-call validation then only
	// concerns the demand vector itself.
	if err := a.prob.validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// NumGroups reports the demand-vector length Allocate expects.
func (a *Allocator) NumGroups() int { return a.numGroups }

// Allocate solves the cost-minimal covering problem for one slot's
// predicted demands. The demand slice must have exactly NumGroups
// entries; it is copied, so callers may reuse their buffer.
func (a *Allocator) Allocate(demands []float64) (Plan, error) {
	if len(demands) != a.numGroups {
		return Plan{}, fmt.Errorf("allocate: %d demands for %d groups", len(demands), a.numGroups)
	}
	copy(a.prob.Demands, demands)
	return Solve(&a.prob)
}

// PeakPlan solves for the element-wise maximum demand across slots —
// the static "provision for the peak" baseline the paper's adaptive
// model is measured against (§III).
func PeakPlan(a *Allocator, slots [][]float64) (Plan, error) {
	if a == nil {
		return Plan{}, errors.New("allocate: nil allocator")
	}
	if len(slots) == 0 {
		return Plan{}, errors.New("allocate: no slots for peak plan")
	}
	peak := make([]float64, a.numGroups)
	for _, d := range slots {
		if len(d) != a.numGroups {
			return Plan{}, fmt.Errorf("allocate: %d demands for %d groups", len(d), a.numGroups)
		}
		for g, v := range d {
			if v > peak[g] {
				peak[g] = v
			}
		}
	}
	return a.Allocate(peak)
}
