// Package allocate implements the paper's dynamic resource allocation
// model (§IV-C): given the predicted per-group workload W_an, choose how
// many instances x_s of each type s to run so that total hourly cost
// Σ x_s·c_s is minimal, capacity covers every group's workload
// (eq. 2), and the cloud's instance cap CC is respected (eq. 3). The
// optimization is exact integer programming (internal/ilp), the role the
// paper gives to R's lpSolveAPI.
//
// Greedy and single-type ("vertical scaling", §III) allocators are
// included for the ablation experiments.
package allocate

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"accelcloud/internal/ilp"
	"accelcloud/internal/lp"
)

// DefaultCC is the paper's cloud cap: "Amazon allows a maximum of 20
// instances for a standard level account".
const DefaultCC = 20

// Spec describes one allocatable instance type.
type Spec struct {
	// TypeName is the instance SKU.
	TypeName string
	// Group is the acceleration group the type serves.
	Group int
	// CostPerHour is c_s.
	CostPerHour float64
	// Capacity is K_s: users (or requests/minute) one instance serves
	// within the SLA, found via benchmarking (§VI-A).
	Capacity float64
}

// Problem is one allocation round.
type Problem struct {
	// Specs are the candidate instance types.
	Specs []Spec
	// Demands is the predicted workload W_an per group index.
	Demands []float64
	// CC caps the total instance count (eq. 3). Zero selects DefaultCC.
	CC int
	// Hierarchical, when true, lets instances of a higher acceleration
	// group absorb lower-group workload (nested capacity constraints)
	// instead of the strict per-group routing the paper deploys.
	Hierarchical bool
}

// Plan is the allocation outcome.
type Plan struct {
	// Counts maps type name to the number of instances to run.
	Counts map[string]int
	// Cost is the total hourly cost.
	Cost float64
	// Feasible reports whether the demands can be covered at all.
	Feasible bool
	// GroupCapacity is the provisioned capacity per group.
	GroupCapacity []float64
	// Overprovision is provisioned capacity minus demand per group.
	Overprovision []float64
}

// TotalInstances reports the plan's instance count.
func (p Plan) TotalInstances() int {
	total := 0
	for _, n := range p.Counts {
		total += n
	}
	return total
}

func (p *Problem) validate() error {
	if len(p.Specs) == 0 {
		return errors.New("allocate: no instance specs")
	}
	if len(p.Demands) == 0 {
		return errors.New("allocate: no demands")
	}
	seen := make(map[string]struct{}, len(p.Specs))
	for _, s := range p.Specs {
		if s.TypeName == "" {
			return errors.New("allocate: spec without type name")
		}
		if _, dup := seen[s.TypeName]; dup {
			return fmt.Errorf("allocate: duplicate spec %q", s.TypeName)
		}
		seen[s.TypeName] = struct{}{}
		if s.Group < 0 || s.Group >= len(p.Demands) {
			return fmt.Errorf("allocate: spec %s group %d outside [0,%d)", s.TypeName, s.Group, len(p.Demands))
		}
		if s.CostPerHour < 0 {
			return fmt.Errorf("allocate: spec %s negative cost", s.TypeName)
		}
		if s.Capacity <= 0 {
			return fmt.Errorf("allocate: spec %s capacity %v <= 0", s.TypeName, s.Capacity)
		}
	}
	for g, d := range p.Demands {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("allocate: demand[%d] = %v", g, d)
		}
	}
	if p.CC < 0 {
		return fmt.Errorf("allocate: CC %d < 0", p.CC)
	}
	return nil
}

func (p *Problem) cc() int {
	if p.CC == 0 {
		return DefaultCC
	}
	return p.CC
}

// Solve finds the cost-minimal plan by integer programming.
func Solve(p *Problem) (Plan, error) {
	if err := p.validate(); err != nil {
		return Plan{}, err
	}
	n := len(p.Specs)
	prob := &ilp.Problem{
		Objective: make([]float64, n),
		Upper:     make([]int, n),
	}
	cc := p.cc()
	for j, s := range p.Specs {
		prob.Objective[j] = s.CostPerHour
		prob.Upper[j] = cc
	}
	// Workload constraints (eq. 2).
	for g, demand := range p.Demands {
		if demand <= 0 && !p.Hierarchical {
			continue
		}
		row := make([]float64, n)
		rhs := demand
		for j, s := range p.Specs {
			serves := s.Group == g
			if p.Hierarchical {
				serves = s.Group >= g
			}
			if serves {
				row[j] = s.Capacity
			}
		}
		if p.Hierarchical {
			// Nested form: capacity at level >= g covers demand at
			// levels >= g.
			rhs = 0
			for gg := g; gg < len(p.Demands); gg++ {
				rhs += p.Demands[gg]
			}
			if rhs <= 0 {
				continue
			}
		}
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: row, Rel: lp.GE, RHS: rhs})
	}
	// Cloud cap (eq. 3).
	capRow := make([]float64, n)
	for j := range capRow {
		capRow[j] = 1
	}
	prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: capRow, Rel: lp.LE, RHS: float64(cc)})

	sol, err := ilp.Solve(prob)
	if err != nil {
		return Plan{}, fmt.Errorf("allocate: %w", err)
	}
	if sol.Status != lp.Optimal {
		return Plan{Feasible: false, Counts: map[string]int{}}, nil
	}
	counts := make(map[string]int, n)
	for j, s := range p.Specs {
		if sol.X[j] > 0 {
			counts[s.TypeName] = sol.X[j]
		}
	}
	return p.finishPlan(counts), nil
}

// finishPlan computes cost/capacity accounting for a counts map.
func (p *Problem) finishPlan(counts map[string]int) Plan {
	plan := Plan{
		Counts:        counts,
		Feasible:      true,
		GroupCapacity: make([]float64, len(p.Demands)),
		Overprovision: make([]float64, len(p.Demands)),
	}
	for _, s := range p.Specs {
		n := counts[s.TypeName]
		if n == 0 {
			continue
		}
		plan.Cost += float64(n) * s.CostPerHour
		plan.GroupCapacity[s.Group] += float64(n) * s.Capacity
	}
	for g := range p.Demands {
		plan.Overprovision[g] = plan.GroupCapacity[g] - p.Demands[g]
	}
	return plan
}

// Greedy allocates cheapest-capacity-per-dollar first within each group —
// the ablation baseline showing what exact optimization buys.
func Greedy(p *Problem) (Plan, error) {
	if err := p.validate(); err != nil {
		return Plan{}, err
	}
	if p.Hierarchical {
		return Plan{}, errors.New("allocate: greedy supports strict grouping only")
	}
	counts := make(map[string]int)
	budget := p.cc()
	// Serve groups in order of demand density (largest demand first) so
	// the cap hits the least damaging groups last.
	order := make([]int, len(p.Demands))
	for g := range order {
		order[g] = g
	}
	sort.Slice(order, func(i, j int) bool { return p.Demands[order[i]] > p.Demands[order[j]] })
	for _, g := range order {
		demand := p.Demands[g]
		if demand <= 0 {
			continue
		}
		// Candidates serving this group, best capacity-per-cost first.
		var cands []Spec
		for _, s := range p.Specs {
			if s.Group == g {
				cands = append(cands, s)
			}
		}
		if len(cands) == 0 {
			return Plan{Feasible: false, Counts: map[string]int{}}, nil
		}
		sort.Slice(cands, func(i, j int) bool {
			ri := cands[i].Capacity / math.Max(cands[i].CostPerHour, 1e-9)
			rj := cands[j].Capacity / math.Max(cands[j].CostPerHour, 1e-9)
			if ri != rj {
				return ri > rj
			}
			return cands[i].TypeName < cands[j].TypeName
		})
		covered := 0.0
		for covered < demand {
			if budget == 0 {
				return Plan{Feasible: false, Counts: map[string]int{}}, nil
			}
			best := cands[0]
			counts[best.TypeName]++
			covered += best.Capacity
			budget--
		}
	}
	return p.finishPlan(counts), nil
}

// SingleType scales one instance type vertically for the whole workload —
// the "one server per smartphone / vertical scaling" strawman of §III.
// Demands from groups the type cannot serve make the plan infeasible
// unless Hierarchical is set and the type's group is the highest.
func SingleType(p *Problem, typeName string) (Plan, error) {
	if err := p.validate(); err != nil {
		return Plan{}, err
	}
	var spec *Spec
	for i := range p.Specs {
		if p.Specs[i].TypeName == typeName {
			spec = &p.Specs[i]
			break
		}
	}
	if spec == nil {
		return Plan{}, fmt.Errorf("allocate: unknown type %q", typeName)
	}
	total := 0.0
	for g, d := range p.Demands {
		if d <= 0 {
			continue
		}
		canServe := g == spec.Group || (p.Hierarchical && spec.Group >= g)
		if !canServe {
			return Plan{Feasible: false, Counts: map[string]int{}}, nil
		}
		total += d
	}
	need := int(math.Ceil(total / spec.Capacity))
	if need > p.cc() {
		return Plan{Feasible: false, Counts: map[string]int{}}, nil
	}
	counts := map[string]int{}
	if need > 0 {
		counts[typeName] = need
	}
	plan := p.finishPlan(counts)
	if p.Hierarchical {
		// All capacity sits in the spec's group; re-attribute coverage.
		plan.Overprovision = []float64{plan.GroupCapacity[spec.Group] - total}
	}
	return plan, nil
}
