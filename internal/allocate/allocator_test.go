package allocate

import (
	"testing"
)

func testSpecs() []Spec {
	return []Spec{
		{TypeName: "t2.nano", Group: 0, CostPerHour: 0.0063, Capacity: 30},
		{TypeName: "t2.large", Group: 1, CostPerHour: 0.1, Capacity: 90},
	}
}

func TestNewAllocatorValidation(t *testing.T) {
	if _, err := NewAllocator(testSpecs(), 0, 0); err == nil {
		t.Fatal("zero groups should fail")
	}
	if _, err := NewAllocator(nil, 2, 0); err == nil {
		t.Fatal("no specs should fail")
	}
	bad := testSpecs()
	bad[1].Group = 5 // outside [0, numGroups)
	if _, err := NewAllocator(bad, 2, 0); err == nil {
		t.Fatal("spec group outside range should fail")
	}
}

func TestAllocatorMatchesSolve(t *testing.T) {
	a, err := NewAllocator(testSpecs(), 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	demandSets := [][]float64{
		{10, 40}, {60, 0}, {0, 0}, {25, 180}, {95, 95},
	}
	for _, demands := range demandSets {
		got, err := a.Allocate(demands)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Solve(&Problem{Specs: testSpecs(), Demands: demands, CC: 20})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost || got.Feasible != want.Feasible || got.TotalInstances() != want.TotalInstances() {
			t.Fatalf("demands %v: allocator %+v != solve %+v", demands, got, want)
		}
	}
}

func TestAllocatorRejectsWrongDemandLength(t *testing.T) {
	a, err := NewAllocator(testSpecs(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Allocate([]float64{1}); err == nil {
		t.Fatal("short demand vector should fail")
	}
}

func TestAllocatorDemandBufferIsCopied(t *testing.T) {
	a, err := NewAllocator(testSpecs(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	demands := []float64{30, 0}
	if _, err := a.Allocate(demands); err != nil {
		t.Fatal(err)
	}
	demands[0] = 1e9 // caller reuses its buffer; must not corrupt the allocator
	plan, err := a.Allocate([]float64{30, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.Counts["t2.nano"] != 1 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestPeakPlan(t *testing.T) {
	a, err := NewAllocator(testSpecs(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	slots := [][]float64{{10, 30}, {55, 10}, {20, 170}}
	plan, err := PeakPlan(a, slots)
	if err != nil {
		t.Fatal(err)
	}
	// Peak demand is (55, 170): 2× nano + 2× large.
	if plan.Counts["t2.nano"] != 2 || plan.Counts["t2.large"] != 2 {
		t.Fatalf("peak plan = %+v", plan.Counts)
	}
	if _, err := PeakPlan(a, nil); err == nil {
		t.Fatal("no slots should fail")
	}
	if _, err := PeakPlan(nil, slots); err == nil {
		t.Fatal("nil allocator should fail")
	}
	if _, err := PeakPlan(a, [][]float64{{1}}); err == nil {
		t.Fatal("ragged demands should fail")
	}
}
