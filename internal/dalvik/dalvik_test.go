package dalvik

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"

	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

func newLoaded(t *testing.T) *Surrogate {
	t.Helper()
	s, err := NewSurrogate("dalvik-x86-test", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PushPool(tasks.DefaultPool()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSurrogateValidation(t *testing.T) {
	if _, err := NewSurrogate("", 1); err == nil {
		t.Fatal("empty name should fail")
	}
	s, err := NewSurrogate("x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cap(s.slots) != DefaultMaxProcs {
		t.Fatalf("default slots = %d, want %d", cap(s.slots), DefaultMaxProcs)
	}
	if s.Name() != "x" {
		t.Fatal("name wrong")
	}
}

func TestPush(t *testing.T) {
	s, err := NewSurrogate("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(tasks.Quicksort{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(tasks.Quicksort{}); err == nil {
		t.Fatal("duplicate push should fail")
	}
	if err := s.Push(nil); err == nil {
		t.Fatal("nil task should fail")
	}
	installed := s.Installed()
	if len(installed) != 1 || installed[0] != "quicksort" {
		t.Fatalf("installed = %v", installed)
	}
}

func TestExecuteRoundTrip(t *testing.T) {
	s := newLoaded(t)
	r := sim.NewRNG(1).Stream("gen")
	st, err := tasks.Quicksort{}.Generate(r, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, elapsed, err := s.Execute(st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Task != "quicksort" || res.Ops <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
	stats := s.Stats()
	if stats.Executed != 1 || stats.Failed != 0 || stats.Rejected != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestExecuteUnknownTask(t *testing.T) {
	s, err := NewSurrogate("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Execute(tasks.State{Task: "ghost"})
	if !errors.Is(err, tasks.ErrUnknownTask) {
		t.Fatalf("err = %v, want ErrUnknownTask", err)
	}
	if s.Stats().Failed != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestExecuteConcurrent(t *testing.T) {
	s := newLoaded(t)
	r := sim.NewRNG(2).Stream("gen")
	states := make([]tasks.State, 32)
	for i := range states {
		st, err := tasks.Sieve{}.Generate(r, 3)
		if err != nil {
			t.Fatal(err)
		}
		states[i] = st
	}
	var wg sync.WaitGroup
	errs := make([]error, len(states))
	for i := range states {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.Execute(states[i])
		}(i)
	}
	wg.Wait()
	executed := 0
	for _, err := range errs {
		if err == nil {
			executed++
		}
	}
	st := s.Stats()
	if int(st.Executed) != executed {
		t.Fatalf("stats executed %d vs %d successes", st.Executed, executed)
	}
	// With 8 slots and 32 fast tasks, most should succeed; rejected ones
	// must be accounted.
	if int(st.Executed+st.Rejected+st.Failed) != len(states) {
		t.Fatalf("accounting broken: %+v for %d requests", st, len(states))
	}
}

func TestHTTPHandler(t *testing.T) {
	s := newLoaded(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	client := rpc.NewClient(srv.URL)
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	r := sim.NewRNG(3).Stream("gen")
	st, err := tasks.NQueens{}.Generate(r, 6)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Execute(ctx, rpc.ExecuteRequest{State: st})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if resp.Server != "dalvik-x86-test" || resp.Result.Task != "nqueens" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.CloudMs < 0 {
		t.Fatalf("cloudMs = %v", resp.CloudMs)
	}
	// Unknown task travels back as a remote error.
	if _, err := client.Execute(ctx, rpc.ExecuteRequest{State: tasks.State{Task: "ghost"}}); err == nil {
		t.Fatal("unknown task should error")
	}
}
