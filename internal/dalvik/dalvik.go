// Package dalvik implements the server-side surrogate of the paper's
// homogeneous offloading model (§V): a runtime that accepts pushed code
// bundles (the paper pushes APK files into a customized Dalvik-x86) and
// executes one request per worker slot — the paper spawns one dalvikvm
// process per in-flight request so problematic requests can be isolated.
//
// Substitution note (see DESIGN.md): registered Go tasks stand in for DEX
// bytecode; the architectural contract — push bundle, execute serialized
// application state, bounded worker slots, per-request accounting — is
// preserved, and the surrogate serves the same HTTP protocol the
// front-end routes to.
package dalvik

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/tasks"
	"accelcloud/internal/wire"
)

// DefaultMaxProcs bounds concurrent per-request workers (dalvikvm
// processes in the paper).
const DefaultMaxProcs = 256

// Stats are the surrogate's lifetime counters.
type Stats struct {
	Executed int64 `json:"executed"`
	Failed   int64 `json:"failed"`
	Rejected int64 `json:"rejected"`
}

// Surrogate is one Dalvik-x86-like execution server.
type Surrogate struct {
	name     string
	maxProcs int

	mu       sync.Mutex
	registry map[string]tasks.Task
	stats    Stats

	// slots is a counting semaphore for worker processes.
	slots chan struct{}
}

// NewSurrogate creates an empty surrogate. maxProcs <= 0 selects
// DefaultMaxProcs.
func NewSurrogate(name string, maxProcs int) (*Surrogate, error) {
	if name == "" {
		return nil, errors.New("dalvik: surrogate without name")
	}
	if maxProcs <= 0 {
		maxProcs = DefaultMaxProcs
	}
	return &Surrogate{
		name:     name,
		maxProcs: maxProcs,
		registry: make(map[string]tasks.Task),
		slots:    make(chan struct{}, maxProcs),
	}, nil
}

// Name reports the surrogate identifier.
func (s *Surrogate) Name() string { return s.name }

// Push registers one task bundle (an APK in the paper: "the available APK
// files are pushed into the Dalvik-x86 as the process is waiting for a
// request").
func (s *Surrogate) Push(t tasks.Task) error {
	if t == nil {
		return errors.New("dalvik: nil task")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	name := t.Name()
	if _, dup := s.registry[name]; dup {
		return fmt.Errorf("dalvik: task %q already pushed", name)
	}
	s.registry[name] = t
	return nil
}

// PushPool registers every task of a pool.
func (s *Surrogate) PushPool(p *tasks.Pool) error {
	for _, name := range p.Names() {
		t, err := p.ByName(name)
		if err != nil {
			return err
		}
		if err := s.Push(t); err != nil {
			return err
		}
	}
	return nil
}

// Installed lists the pushed bundle names, sorted.
func (s *Surrogate) Installed() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.registry))
	for name := range s.registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns a copy of the counters.
func (s *Surrogate) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Execute runs one serialized application state on a worker slot,
// measuring Tcloud. It rejects immediately when all slots are busy
// (the saturation failure mode of Fig 8c).
func (s *Surrogate) Execute(st tasks.State) (tasks.Result, time.Duration, error) {
	select {
	case s.slots <- struct{}{}:
	default:
		s.mu.Lock()
		s.stats.Rejected++
		s.mu.Unlock()
		return tasks.Result{}, 0, fmt.Errorf("dalvik: %s: all %d worker slots busy", s.name, s.maxProcs)
	}
	defer func() { <-s.slots }()

	s.mu.Lock()
	task, ok := s.registry[st.Task]
	s.mu.Unlock()
	if !ok {
		s.mu.Lock()
		s.stats.Failed++
		s.mu.Unlock()
		return tasks.Result{}, 0, fmt.Errorf("dalvik: %s: %w: %q", s.name, tasks.ErrUnknownTask, st.Task)
	}
	start := time.Now()
	res, err := task.Execute(st)
	elapsed := time.Since(start)
	s.mu.Lock()
	if err != nil {
		s.stats.Failed++
	} else {
		s.stats.Executed++
	}
	s.mu.Unlock()
	if err != nil {
		return tasks.Result{}, elapsed, fmt.Errorf("dalvik: %s: %w", s.name, err)
	}
	return res, elapsed, nil
}

// ExecuteBatch runs a batch of states concurrently, one worker slot
// each — the serving layer's dynamic batcher lands here, so a batch
// of parallelizable tasks (ParMatMul rows, MatMul calls) spreads
// across the surrogate's slots the way the paper's per-request
// dalvikvm processes would. Results come back in call order; per-call
// failures (including slot saturation) stay inside each result's
// Error field so one bad call does not fail its batchmates.
func (s *Surrogate) ExecuteBatch(sts []tasks.State) []rpc.ExecuteResponse {
	out := make([]rpc.ExecuteResponse, len(sts))
	var wg sync.WaitGroup
	wg.Add(len(sts))
	for i := range sts {
		go func(i int) {
			defer wg.Done()
			res, elapsed, err := s.Execute(sts[i])
			if err != nil {
				out[i] = rpc.ExecuteResponse{Server: s.name, Error: err.Error()}
				return
			}
			out[i] = rpc.ExecuteResponse{
				Result:  res,
				CloudMs: float64(elapsed) / float64(time.Millisecond),
				Server:  s.name,
			}
		}(i)
	}
	wg.Wait()
	return out
}

// Handler serves the surrogate protocol:
//
//	POST /execute        — run a state
//	POST /execute/batch  — run a batch of states across worker slots
//	GET  /healthz        — liveness
//	GET  /stats          — counters + installed bundles
func (s *Surrogate) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(rpc.PathExecute, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			rpc.WriteJSON(w, http.StatusMethodNotAllowed, rpc.ExecuteResponse{Error: "POST only"})
			return
		}
		var req rpc.ExecuteRequest
		if err := rpc.ReadJSON(r, &req); err != nil {
			rpc.WriteJSON(w, http.StatusBadRequest, rpc.ExecuteResponse{Error: err.Error()})
			return
		}
		res, elapsed, err := s.Execute(req.State)
		if err != nil {
			rpc.WriteJSON(w, http.StatusOK, rpc.ExecuteResponse{
				Server: s.name,
				Error:  err.Error(),
			})
			return
		}
		rpc.WriteJSON(w, http.StatusOK, rpc.ExecuteResponse{
			Result:  res,
			CloudMs: float64(elapsed) / float64(time.Millisecond),
			Server:  s.name,
		})
	})
	mux.HandleFunc(rpc.PathExecuteBatch, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			rpc.WriteJSON(w, http.StatusMethodNotAllowed, rpc.ExecuteBatchResponse{})
			return
		}
		var req rpc.ExecuteBatchRequest
		if err := rpc.ReadJSON(r, &req); err != nil {
			rpc.WriteJSON(w, http.StatusBadRequest, rpc.ExecuteBatchResponse{})
			return
		}
		if len(req.Calls) > wire.MaxBatchCalls {
			rpc.WriteJSON(w, http.StatusBadRequest, rpc.ExecuteBatchResponse{})
			return
		}
		sts := make([]tasks.State, len(req.Calls))
		for i, c := range req.Calls {
			sts[i] = c.State
		}
		rpc.WriteJSON(w, http.StatusOK, rpc.ExecuteBatchResponse{Results: s.ExecuteBatch(sts)})
	})
	mux.HandleFunc(rpc.PathHealth, func(w http.ResponseWriter, r *http.Request) {
		rpc.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok", "server": s.name})
	})
	mux.HandleFunc(rpc.PathStats, func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		payload := struct {
			Server    string   `json:"server"`
			Stats     Stats    `json:"stats"`
			Installed []string `json:"installed"`
		}{Server: s.name, Stats: s.stats}
		s.mu.Unlock()
		payload.Installed = s.Installed()
		rpc.WriteJSON(w, http.StatusOK, payload)
	})
	return mux
}

// executeWire adapts Execute to the framed protocol: failures travel
// in the response's Error field, exactly like the HTTP handler's
// 200-with-error contract, so both protocols classify surrogate
// failures identically.
func (s *Surrogate) executeWire(_ context.Context, req wire.ExecuteRequest) wire.ExecuteResponse {
	res, elapsed, err := s.Execute(req.State)
	if err != nil {
		return wire.ExecuteResponse{Server: s.name, Error: err.Error()}
	}
	return wire.ExecuteResponse{
		Result:  res,
		CloudMs: float64(elapsed) / float64(time.Millisecond),
		Server:  s.name,
	}
}

// BinaryServer builds the surrogate's framed-protocol server — the
// binary counterpart of Handler, serving execute and ping frames over
// persistent multiplexed connections.
func (s *Surrogate) BinaryServer() *wire.Server {
	return &wire.Server{H: wire.Handlers{Execute: s.executeWire}}
}

// ServeBinary serves the framed protocol on lis until the listener
// fails or the returned server is Closed.
func (s *Surrogate) ServeBinary(lis net.Listener) (*wire.Server, error) {
	srv := s.BinaryServer()
	go func() { _ = srv.Serve(lis) }()
	return srv, nil
}
