package cloud

import (
	"math"
	"testing"
	"time"

	"accelcloud/internal/sim"
)

func TestDefaultCatalogTypes(t *testing.T) {
	c := DefaultCatalog()
	want := []string{
		"t2.nano", "t2.micro", "t2.small", "t2.medium", "t2.large",
		"m4.4xlarge", "m4.10xlarge", "c4.8xlarge",
	}
	names := c.Names()
	if len(names) != len(want) {
		t.Fatalf("catalog has %d types, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if len(c.Types()) != len(want) {
		t.Fatal("Types() length mismatch")
	}
}

func TestCatalogByName(t *testing.T) {
	c := DefaultCatalog()
	nano, err := c.ByName("t2.nano")
	if err != nil {
		t.Fatal(err)
	}
	if nano.VCPU != 1 || !nano.Burstable {
		t.Fatalf("t2.nano = %+v", nano)
	}
	if _, err := c.ByName("x1.mega"); err == nil {
		t.Fatal("unknown type should fail")
	}
}

func TestCatalogPricesAscendWithCapability(t *testing.T) {
	c := DefaultCatalog()
	order := []string{"t2.nano", "t2.micro", "t2.small", "t2.medium", "t2.large", "m4.4xlarge", "m4.10xlarge"}
	prev := -1.0
	for _, n := range order {
		it, err := c.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if it.PricePerHour <= prev {
			t.Fatalf("%s price %v not above previous %v", n, it.PricePerHour, prev)
		}
		prev = it.PricePerHour
	}
}

func TestInstanceTypeValidate(t *testing.T) {
	good := InstanceType{Name: "x", VCPU: 1, SpeedFactor: 1, ContentionFactor: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid type rejected: %v", err)
	}
	bad := []InstanceType{
		{},
		{Name: "x", VCPU: 0, SpeedFactor: 1, ContentionFactor: 1},
		{Name: "x", VCPU: 1, SpeedFactor: 0, ContentionFactor: 1},
		{Name: "x", VCPU: 1, SpeedFactor: 1, PricePerHour: -1, ContentionFactor: 1},
		{Name: "x", VCPU: 1, SpeedFactor: 1, ContentionFactor: 0},
		{Name: "x", VCPU: 1, SpeedFactor: 1, ContentionFactor: 1, Burstable: true, BaselineUtil: 0},
		{Name: "x", VCPU: 1, SpeedFactor: 1, ContentionFactor: 1, Burstable: true, BaselineUtil: 2},
		{Name: "x", VCPU: 1, SpeedFactor: 1, ContentionFactor: 1, Burstable: true, BaselineUtil: 0.1, MaxCredits: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("case %d should fail: %+v", i, b)
		}
	}
}

func TestNewCatalogRejectsDuplicates(t *testing.T) {
	a := InstanceType{Name: "x", VCPU: 1, SpeedFactor: 1, ContentionFactor: 1}
	if _, err := NewCatalog(a, a); err == nil {
		t.Fatal("duplicate names should fail")
	}
	if _, err := NewCatalog(InstanceType{}); err == nil {
		t.Fatal("invalid type should fail")
	}
}

func TestRates(t *testing.T) {
	it := InstanceType{Name: "x", VCPU: 4, SpeedFactor: 1.5, ContentionFactor: 0.5}
	wantSingle := 1.5 * 0.5 * RefCoreRate
	if got := it.SingleTaskRate(); math.Abs(got-wantSingle) > 1e-9 {
		t.Fatalf("SingleTaskRate = %v, want %v", got, wantSingle)
	}
	if got := it.TotalRate(); math.Abs(got-4*wantSingle) > 1e-9 {
		t.Fatalf("TotalRate = %v, want %v", got, 4*wantSingle)
	}
}

func TestNewInstanceValidation(t *testing.T) {
	ct := DefaultCatalog()
	nano, _ := ct.ByName("t2.nano")
	if _, err := NewInstance("", nano, sim.Epoch); err == nil {
		t.Fatal("empty id should fail")
	}
	if _, err := NewInstance("i-1", InstanceType{}, sim.Epoch); err == nil {
		t.Fatal("invalid type should fail")
	}
	inst, err := NewInstance("i-1", nano, sim.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if inst.ID() != "i-1" || inst.Type().Name != "t2.nano" {
		t.Fatalf("instance = %v %v", inst.ID(), inst.Type().Name)
	}
	if inst.Credits() != nano.InitialCredits {
		t.Fatalf("credits = %v, want %v", inst.Credits(), nano.InitialCredits)
	}
	if !inst.Launched().Equal(sim.Epoch) {
		t.Fatal("launch time wrong")
	}
}

func TestCreditDrainAndThrottle(t *testing.T) {
	ct := DefaultCatalog()
	nano, _ := ct.ByName("t2.nano")
	inst, err := NewInstance("i-1", nano, sim.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Throttled() {
		t.Fatal("fresh instance must not be throttled")
	}
	if inst.EffectiveCores() != 1 {
		t.Fatalf("EffectiveCores = %v, want 1", inst.EffectiveCores())
	}
	// Burn the full core for 40 minutes: spend 40 credits, accrue 2
	// (3/hr × 2/3 hr): 30 + 2 - 40 < 0 -> throttled to 5% of a core.
	if err := inst.Advance(sim.Epoch.Add(40*time.Minute), 1.0); err != nil {
		t.Fatal(err)
	}
	if !inst.Throttled() {
		t.Fatalf("want throttled after sustained burn, credits=%v", inst.Credits())
	}
	if got := inst.EffectiveCores(); math.Abs(got-0.05) > 1e-9 {
		t.Fatalf("EffectiveCores = %v, want 0.05", got)
	}
	// Idle for 10 hours: accrues 30 credits, un-throttles.
	if err := inst.Advance(sim.Epoch.Add(40*time.Minute+10*time.Hour), 0); err != nil {
		t.Fatal(err)
	}
	if inst.Throttled() {
		t.Fatalf("want recovered, credits=%v", inst.Credits())
	}
}

func TestCreditCapAndClamp(t *testing.T) {
	ct := DefaultCatalog()
	nano, _ := ct.ByName("t2.nano")
	inst, _ := NewInstance("i-1", nano, sim.Epoch)
	// A week idle: accrual must cap at MaxCredits.
	if err := inst.Advance(sim.Epoch.Add(7*24*time.Hour), 0); err != nil {
		t.Fatal(err)
	}
	if inst.Credits() != nano.MaxCredits {
		t.Fatalf("credits = %v, want cap %v", inst.Credits(), nano.MaxCredits)
	}
}

func TestAdvanceBackwardsRejected(t *testing.T) {
	ct := DefaultCatalog()
	nano, _ := ct.ByName("t2.nano")
	inst, _ := NewInstance("i-1", nano, sim.Epoch.Add(time.Hour))
	if err := inst.Advance(sim.Epoch, 0); err == nil {
		t.Fatal("advancing backwards should fail")
	}
}

func TestNonBurstableNeverThrottles(t *testing.T) {
	ct := DefaultCatalog()
	m4, _ := ct.ByName("m4.10xlarge")
	inst, _ := NewInstance("i-1", m4, sim.Epoch)
	if err := inst.Advance(sim.Epoch.Add(100*time.Hour), 40); err != nil {
		t.Fatal(err)
	}
	if inst.Throttled() {
		t.Fatal("m4 must never throttle")
	}
	if inst.EffectiveCores() != 40 {
		t.Fatalf("EffectiveCores = %v, want 40", inst.EffectiveCores())
	}
}

func TestBilling(t *testing.T) {
	ct := DefaultCatalog()
	large, _ := ct.ByName("t2.large")
	inst, _ := NewInstance("i-1", large, sim.Epoch)
	tests := []struct {
		after time.Duration
		hours int
	}{
		{0, 1},
		{time.Minute, 1},
		{time.Hour, 1},
		{time.Hour + time.Second, 2},
		{5*time.Hour + 30*time.Minute, 6},
	}
	for _, tt := range tests {
		if got := inst.HoursBilled(sim.Epoch.Add(tt.after)); got != tt.hours {
			t.Fatalf("HoursBilled(%v) = %d, want %d", tt.after, got, tt.hours)
		}
	}
	if got := inst.Cost(sim.Epoch.Add(90 * time.Minute)); math.Abs(got-2*large.PricePerHour) > 1e-12 {
		t.Fatalf("Cost = %v, want two hours", got)
	}
}

// The anomaly premise of Fig 6: under sustained load, t2.nano delivers
// more throughput than t2.micro despite having fewer nominal resources.
func TestNanoBeatsMicroUnderSustainedLoad(t *testing.T) {
	ct := DefaultCatalog()
	nano, _ := ct.ByName("t2.nano")
	micro, _ := ct.ByName("t2.micro")
	if nano.SingleTaskRate() <= micro.SingleTaskRate() {
		t.Fatalf("nano single-task rate %v must exceed micro's %v (contention model)",
			nano.SingleTaskRate(), micro.SingleTaskRate())
	}
	// The free-tier anomaly must not extend to the rest of the family.
	small, _ := ct.ByName("t2.small")
	if small.SingleTaskRate() != nano.SingleTaskRate() {
		t.Fatal("nano and small share the uncontended rate")
	}
}

// Acceleration ratio calibration (Fig 5): level 2 (t2.medium/large) runs a
// serial task ≈1.25× faster than level 1 (t2.nano/small); level 3
// (m4.10xlarge) ≈1.73×; level 3 over level 2 ≈1.38.
func TestAccelerationRatios(t *testing.T) {
	ct := DefaultCatalog()
	nano, _ := ct.ByName("t2.nano")
	large, _ := ct.ByName("t2.large")
	m4, _ := ct.ByName("m4.10xlarge")
	r21 := large.SingleTaskRate() / nano.SingleTaskRate()
	r31 := m4.SingleTaskRate() / nano.SingleTaskRate()
	r32 := m4.SingleTaskRate() / large.SingleTaskRate()
	if math.Abs(r21-1.25) > 0.01 {
		t.Fatalf("level2/level1 = %v, want ≈1.25", r21)
	}
	if math.Abs(r31-1.73) > 0.01 {
		t.Fatalf("level3/level1 = %v, want ≈1.73", r31)
	}
	if math.Abs(r32-1.384) > 0.01 {
		t.Fatalf("level3/level2 = %v, want ≈1.36–1.39", r32)
	}
}
