package cloud

import (
	"testing"
	"testing/quick"
	"time"

	"accelcloud/internal/sim"
)

// Property: under any sequence of advances, the credit balance stays in
// [0, MaxCredits] and EffectiveCores stays in (0, VCPU].
func TestCreditInvariantsProperty(t *testing.T) {
	ct := DefaultCatalog()
	types := []string{"t2.nano", "t2.micro", "t2.small", "t2.medium", "t2.large"}
	f := func(seed int64, steps []uint8) bool {
		rng := sim.NewRNG(seed).Stream("credits")
		name := types[int(uint64(seed)%uint64(len(types)))]
		typ, err := ct.ByName(name)
		if err != nil {
			return false
		}
		inst, err := NewInstance("i-q", typ, sim.Epoch)
		if err != nil {
			return false
		}
		now := sim.Epoch
		for _, s := range steps {
			dt := time.Duration(s) * time.Second * 13
			usage := rng.Float64() * float64(typ.VCPU)
			now = now.Add(dt)
			if err := inst.Advance(now, usage); err != nil {
				return false
			}
			if inst.Credits() < 0 || inst.Credits() > typ.MaxCredits {
				return false
			}
			eff := inst.EffectiveCores()
			if eff <= 0 || eff > float64(typ.VCPU) {
				return false
			}
			if inst.Throttled() != (inst.Credits() <= 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// The t2 steady state: sustained usage at exactly the baseline is credit
// neutral (accrual covers spend).
func TestBaselineUsageIsSustainable(t *testing.T) {
	ct := DefaultCatalog()
	nano, err := ct.ByName("t2.nano")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance("i-base", nano, sim.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	// nano: baseline 5% of one core; accrual 3 credits/h = 0.05
	// core-hours per hour. Run 100 h at exactly baseline usage.
	usage := nano.BaselineUtil * float64(nano.VCPU)
	for h := 1; h <= 100; h++ {
		if err := inst.Advance(sim.Epoch.Add(time.Duration(h)*time.Hour), usage); err != nil {
			t.Fatal(err)
		}
	}
	if inst.Throttled() {
		t.Fatalf("baseline usage throttled the instance (credits %v)", inst.Credits())
	}
	// And slightly above baseline eventually throttles.
	inst2, err := NewInstance("i-over", nano, sim.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h <= 600; h++ {
		if err := inst2.Advance(sim.Epoch.Add(time.Duration(h)*time.Hour), usage*2); err != nil {
			t.Fatal(err)
		}
	}
	if !inst2.Throttled() {
		t.Fatalf("2x baseline usage should exhaust credits (credits %v)", inst2.Credits())
	}
}
