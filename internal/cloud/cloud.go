// Package cloud models the EC2-style instance pool of the paper's testbed
// (§VI: t2.nano … t2.large, m4.10xlarge, plus m4.4xlarge and c4.8xlarge
// from §VI-B/§VI-C). An instance type carries the compute parameters that
// drive the queueing simulation (internal/qsim): core count, per-core
// speed, the t2 CPU-credit burst model, and the hourly price used by the
// allocator.
//
// Substitution note (see DESIGN.md): per-core speeds are calibrated so
// that the acceleration-level ratios the paper measures (≈1.25×, ≈1.36×,
// ≈1.73×) reproduce; the credit/contention parameters reproduce the
// t2.nano-beats-t2.micro anomaly of Fig 6.
package cloud

import (
	"errors"
	"fmt"
	"time"
)

// RefCoreRate is the work-unit throughput of one reference core
// (SpeedFactor 1.0). Task service time = Work / (SpeedFactor·RefCoreRate)
// on an uncontended core. The constant is chosen so the pool's default
// request mix costs ≈10 ms of single-core time, matching the response
// floors of Fig 4.
const RefCoreRate = 200_000.0

// InstanceType describes one purchasable server type.
type InstanceType struct {
	// Name is the vendor SKU, e.g. "t2.nano".
	Name string
	// VCPU is the number of virtual cores.
	VCPU int
	// SpeedFactor is the per-core effective speed relative to the
	// reference core, folding in clock, memory bandwidth and cache
	// effects. Calibrated against the paper's acceleration ratios.
	SpeedFactor float64
	// MemGiB is the instance memory (informational; bounds concurrent
	// surrogate processes).
	MemGiB float64
	// PricePerHour is the on-demand price in USD (eu-west-1, 2017).
	PricePerHour float64

	// Burstable marks t2-family instances governed by CPU credits.
	Burstable bool
	// BaselineUtil is the fraction of total VCPU capacity sustainable
	// with an empty credit balance (t2 spec).
	BaselineUtil float64
	// InitialCredits is the launch credit balance (vCPU-minutes).
	InitialCredits float64
	// CreditRatePerHour is the credit accrual rate (vCPU-minutes/hour).
	CreditRatePerHour float64
	// MaxCredits caps the credit balance.
	MaxCredits float64

	// ContentionFactor scales the instance's effective compute downward
	// to model host-level oversubscription. The free-tier t2.micro pool
	// is modelled as heavily contended; this is the mechanism behind the
	// paper's nano/micro anomaly (Fig 6, §VI-A4).
	ContentionFactor float64
}

// Validate checks the type parameters.
func (t InstanceType) Validate() error {
	if t.Name == "" {
		return errors.New("cloud: instance type without name")
	}
	if t.VCPU <= 0 {
		return fmt.Errorf("cloud: %s has %d vCPU", t.Name, t.VCPU)
	}
	if t.SpeedFactor <= 0 {
		return fmt.Errorf("cloud: %s has speed factor %v", t.Name, t.SpeedFactor)
	}
	if t.PricePerHour < 0 {
		return fmt.Errorf("cloud: %s has negative price", t.Name)
	}
	if t.Burstable {
		if t.BaselineUtil <= 0 || t.BaselineUtil > 1 {
			return fmt.Errorf("cloud: %s baseline %v outside (0,1]", t.Name, t.BaselineUtil)
		}
		if t.CreditRatePerHour < 0 || t.MaxCredits < 0 || t.InitialCredits < 0 {
			return fmt.Errorf("cloud: %s has negative credit parameters", t.Name)
		}
	}
	if t.ContentionFactor <= 0 || t.ContentionFactor > 1 {
		return fmt.Errorf("cloud: %s contention %v outside (0,1]", t.Name, t.ContentionFactor)
	}
	return nil
}

// SingleTaskRate is the maximum work-unit rate a single (serial) request
// can consume on this type: one core at full speed. The paper's §VII-1
// "acceleration limit": a task cannot exploit more cores than its code
// parallelism, and the pool's tasks are serial.
func (t InstanceType) SingleTaskRate() float64 {
	return t.SpeedFactor * t.ContentionFactor * RefCoreRate
}

// TotalRate is the aggregate work-unit rate across all cores.
func (t InstanceType) TotalRate() float64 {
	return float64(t.VCPU) * t.SingleTaskRate()
}

// Catalog is the set of purchasable instance types, keyed by name.
type Catalog struct {
	byName map[string]InstanceType
	order  []string
}

// NewCatalog validates and indexes the given types.
func NewCatalog(types ...InstanceType) (*Catalog, error) {
	c := &Catalog{byName: make(map[string]InstanceType, len(types))}
	for _, t := range types {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.byName[t.Name]; dup {
			return nil, fmt.Errorf("cloud: duplicate type %q", t.Name)
		}
		c.byName[t.Name] = t
		c.order = append(c.order, t.Name)
	}
	return c, nil
}

// DefaultCatalog returns the paper's eight instance types with 2017
// eu-west-1 on-demand pricing and t2 credit parameters.
func DefaultCatalog() *Catalog {
	c, err := NewCatalog(
		InstanceType{
			Name: "t2.nano", VCPU: 1, SpeedFactor: 1.0, MemGiB: 0.5,
			PricePerHour: 0.0063, Burstable: true, BaselineUtil: 0.05,
			InitialCredits: 30, CreditRatePerHour: 3, MaxCredits: 72,
			ContentionFactor: 1.0,
		},
		InstanceType{
			// Free-tier eligible; modelled as contended (Fig 6 anomaly).
			Name: "t2.micro", VCPU: 1, SpeedFactor: 1.0, MemGiB: 1,
			PricePerHour: 0.0126, Burstable: true, BaselineUtil: 0.10,
			InitialCredits: 30, CreditRatePerHour: 6, MaxCredits: 144,
			ContentionFactor: 0.55,
		},
		InstanceType{
			Name: "t2.small", VCPU: 1, SpeedFactor: 1.0, MemGiB: 2,
			PricePerHour: 0.025, Burstable: true, BaselineUtil: 0.20,
			InitialCredits: 30, CreditRatePerHour: 12, MaxCredits: 288,
			ContentionFactor: 1.0,
		},
		InstanceType{
			Name: "t2.medium", VCPU: 2, SpeedFactor: 1.25, MemGiB: 4,
			PricePerHour: 0.05, Burstable: true, BaselineUtil: 0.20,
			InitialCredits: 60, CreditRatePerHour: 24, MaxCredits: 576,
			ContentionFactor: 1.0,
		},
		InstanceType{
			Name: "t2.large", VCPU: 2, SpeedFactor: 1.25, MemGiB: 8,
			PricePerHour: 0.101, Burstable: true, BaselineUtil: 0.30,
			InitialCredits: 60, CreditRatePerHour: 36, MaxCredits: 864,
			ContentionFactor: 1.0,
		},
		InstanceType{
			Name: "m4.4xlarge", VCPU: 16, SpeedFactor: 1.6, MemGiB: 64,
			PricePerHour: 0.888, ContentionFactor: 1.0,
		},
		InstanceType{
			Name: "m4.10xlarge", VCPU: 40, SpeedFactor: 1.73, MemGiB: 160,
			PricePerHour: 2.22, ContentionFactor: 1.0,
		},
		InstanceType{
			Name: "c4.8xlarge", VCPU: 36, SpeedFactor: 2.0, MemGiB: 60,
			PricePerHour: 1.811, ContentionFactor: 1.0,
		},
	)
	if err != nil {
		// The default catalog is a fixed literal; failure is a
		// programming error surfaced at startup.
		panic(err)
	}
	return c
}

// ByName fetches a type.
func (c *Catalog) ByName(name string) (InstanceType, error) {
	t, ok := c.byName[name]
	if !ok {
		return InstanceType{}, fmt.Errorf("cloud: unknown instance type %q", name)
	}
	return t, nil
}

// Names lists the catalog's type names in registration order.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Types lists the catalog's types in registration order.
func (c *Catalog) Types() []InstanceType {
	out := make([]InstanceType, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.byName[n])
	}
	return out
}

// Instance is one launched server with live CPU-credit state.
type Instance struct {
	id       string
	typ      InstanceType
	credits  float64
	lastAt   time.Time
	launched time.Time
}

// NewInstance launches an instance of the given type at virtual time now.
func NewInstance(id string, t InstanceType, now time.Time) (*Instance, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if id == "" {
		return nil, errors.New("cloud: instance without id")
	}
	return &Instance{
		id: id, typ: t, credits: t.InitialCredits, lastAt: now, launched: now,
	}, nil
}

// ID reports the instance identifier.
func (i *Instance) ID() string { return i.id }

// Type reports the instance type.
func (i *Instance) Type() InstanceType { return i.typ }

// Credits reports the current credit balance (vCPU-minutes).
func (i *Instance) Credits() float64 { return i.credits }

// Launched reports the launch time.
func (i *Instance) Launched() time.Time { return i.launched }

// Advance accounts credit accrual and spend for the interval
// [lastAt, now] during which coresInUse virtual cores were busy.
// Calling with now before the last update is an error.
func (i *Instance) Advance(now time.Time, coresInUse float64) error {
	dt := now.Sub(i.lastAt)
	if dt < 0 {
		return fmt.Errorf("cloud: instance %s advanced backwards (%v)", i.id, dt)
	}
	i.lastAt = now
	if !i.typ.Burstable || dt == 0 {
		return nil
	}
	minutes := dt.Minutes()
	// Accrue, then spend for usage above zero; baseline usage is "free"
	// in the sense that accrual covers it when utilization stays at the
	// baseline.
	i.credits += i.typ.CreditRatePerHour * dt.Hours()
	i.credits -= coresInUse * minutes
	if i.credits > i.typ.MaxCredits {
		i.credits = i.typ.MaxCredits
	}
	if i.credits < 0 {
		i.credits = 0
	}
	return nil
}

// EffectiveCores reports how many virtual cores the instance can use
// right now: all of them while credits remain, the baseline fraction once
// the balance is empty.
func (i *Instance) EffectiveCores() float64 {
	c := float64(i.typ.VCPU)
	if i.typ.Burstable && i.credits <= 0 {
		return c * i.typ.BaselineUtil
	}
	return c
}

// Throttled reports whether the instance is pinned at its baseline.
func (i *Instance) Throttled() bool {
	return i.typ.Burstable && i.credits <= 0
}

// HoursBilled reports the number of whole provisioning hours billed from
// launch to now (partial hours round up, the EC2 2017 billing rule).
func (i *Instance) HoursBilled(now time.Time) int {
	d := now.Sub(i.launched)
	if d <= 0 {
		return 1
	}
	hours := int(d / time.Hour)
	if d%time.Hour != 0 {
		hours++
	}
	if hours < 1 {
		hours = 1
	}
	return hours
}

// Cost reports the billed cost from launch to now.
func (i *Instance) Cost(now time.Time) float64 {
	return float64(i.HoursBilled(now)) * i.typ.PricePerHour
}
