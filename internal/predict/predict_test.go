package predict

import (
	"math"
	"testing"
	"time"

	"accelcloud/internal/sim"
	"accelcloud/internal/trace"
)

// slotOf builds a slot with the given per-group user counts; user ids are
// offset per group to keep sets disjoint.
func slotOf(i int, counts ...int) trace.Slot {
	s := trace.Slot{Start: sim.Epoch.Add(time.Duration(i) * time.Hour)}
	for g, c := range counts {
		users := make([]int, c)
		for u := range users {
			users[u] = g*1000 + u
		}
		s.Groups = append(s.Groups, users)
	}
	return s
}

// cycle builds a periodic history: counts repeat with the given period.
func cycle(n, period int) []trace.Slot {
	patterns := [][]int{
		{10, 2, 0}, {20, 5, 1}, {40, 10, 2}, {25, 8, 3}, {12, 4, 1},
		{6, 2, 0}, {3, 1, 0}, {8, 3, 1},
	}
	out := make([]trace.Slot, n)
	for i := range out {
		out[i] = slotOf(i, patterns[i%period]...)
	}
	return out
}

func TestEditDistanceNNOnPeriodicLoad(t *testing.T) {
	slots := cycle(32, 8)
	p := EditDistanceNN{}
	// Current slot is slots[15] (pattern 7); the nearest historical match
	// is slots[7], whose successor slots[8] has pattern 0 — exactly the
	// true next slot's pattern.
	pred, err := p.Predict(slots[:16])
	if err != nil {
		t.Fatal(err)
	}
	truth := slots[16]
	if got := CountsAccuracy(pred, truth); got != 1 {
		t.Fatalf("periodic prediction accuracy = %v, want 1 (pred %v, truth %v)",
			got, pred.Counts(), truth.Counts())
	}
}

func TestEditDistanceNNBootstrapIsConservative(t *testing.T) {
	// With a single slot of history, the model can only repeat it.
	slots := []trace.Slot{slotOf(0, 7, 3)}
	pred, err := EditDistanceNN{}.Predict(slots)
	if err != nil {
		t.Fatal(err)
	}
	c := pred.Counts()
	if c[0] != 7 || c[1] != 3 {
		t.Fatalf("bootstrap prediction = %v, want [7 3]", c)
	}
}

// §IV-B2: "dramatically growing loads are only ever matched to the
// largest load seen in the near history."
func TestGrowingLoadMatchedToLargestSeen(t *testing.T) {
	slots := []trace.Slot{
		slotOf(0, 5), slotOf(1, 8), slotOf(2, 12), slotOf(3, 500),
	}
	pred, err := EditDistanceNN{}.Predict(slots)
	if err != nil {
		t.Fatal(err)
	}
	// The spike (500) is nearest to slot 2 (12 users)... actually the
	// nearest match is itself (distance 0), whose successor does not
	// exist, so the model returns the spike itself — never more than the
	// largest load seen.
	if got := pred.Counts()[0]; got > 500 {
		t.Fatalf("prediction %d exceeds largest seen load", got)
	}
	if got := pred.Counts()[0]; got != 500 {
		t.Fatalf("prediction = %d, want 500 (self-match fallback)", got)
	}
}

func TestPredictorsRejectEmptyHistory(t *testing.T) {
	for _, p := range []Predictor{EditDistanceNN{}, LastValue{}, MovingAverage{}} {
		if _, err := p.Predict(nil); err == nil {
			t.Fatalf("%s should reject empty history", p.Name())
		}
	}
}

func TestPredictorNames(t *testing.T) {
	if (EditDistanceNN{}).Name() != "edit-distance-nn" ||
		(LastValue{}).Name() != "last-value" ||
		(MovingAverage{}).Name() != "moving-average" {
		t.Fatal("predictor names wrong")
	}
}

func TestLastValue(t *testing.T) {
	slots := []trace.Slot{slotOf(0, 3), slotOf(1, 9, 2)}
	pred, err := LastValue{}.Predict(slots)
	if err != nil {
		t.Fatal(err)
	}
	c := pred.Counts()
	if c[0] != 9 || c[1] != 2 {
		t.Fatalf("LastValue = %v, want [9 2]", c)
	}
}

func TestMovingAverage(t *testing.T) {
	slots := []trace.Slot{slotOf(0, 10), slotOf(1, 20), slotOf(2, 30)}
	pred, err := MovingAverage{Window: 3}.Predict(slots)
	if err != nil {
		t.Fatal(err)
	}
	if got := pred.Counts()[0]; got != 20 {
		t.Fatalf("MovingAverage = %d, want 20", got)
	}
	// Window larger than history clamps.
	pred, err = MovingAverage{Window: 99}.Predict(slots[:2])
	if err != nil {
		t.Fatal(err)
	}
	if got := pred.Counts()[0]; got != 15 {
		t.Fatalf("clamped MovingAverage = %d, want 15", got)
	}
	// Zero window defaults to 3.
	if _, err := (MovingAverage{}).Predict(slots); err != nil {
		t.Fatal(err)
	}
}

func TestCountsAccuracy(t *testing.T) {
	a := slotOf(0, 10, 20)
	if got := CountsAccuracy(a, a); got != 1 {
		t.Fatalf("self accuracy = %v", got)
	}
	b := slotOf(0, 5, 20)
	// group0: 5 vs 10 -> 0.5; group1: exact -> 1; mean 0.75.
	if got := CountsAccuracy(b, a); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("accuracy = %v, want 0.75", got)
	}
	// Ragged group counts are compared over the union.
	c := slotOf(0, 10)
	if got := CountsAccuracy(c, a); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("ragged accuracy = %v, want 0.5 (missing group scores 0)", got)
	}
	if got := CountsAccuracy(trace.Slot{}, trace.Slot{}); got != 1 {
		t.Fatalf("empty accuracy = %v, want 1", got)
	}
}

func TestEvaluate(t *testing.T) {
	slots := cycle(40, 8)
	// minHistory 9: at least one full period plus one slot, so the
	// current pattern always has an earlier occurrence whose successor
	// is known.
	accs, err := Evaluate(slots, EditDistanceNN{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 31 {
		t.Fatalf("got %d accuracies, want 31", len(accs))
	}
	// After one full period of history, a strictly periodic load is
	// predicted perfectly.
	for i, a := range accs {
		if a < 0.99 {
			t.Fatalf("step %d accuracy %v on periodic load", i, a)
		}
	}
	if _, err := Evaluate(slots[:2], EditDistanceNN{}, 8); err == nil {
		t.Fatal("too-short history should fail")
	}
	if _, err := Evaluate(slots, nil, 1); err == nil {
		t.Fatal("nil predictor should fail")
	}
}

func TestCrossValidate(t *testing.T) {
	slots := cycle(60, 8)
	acc, err := CrossValidate(slots, EditDistanceNN{}, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Fatalf("10-fold CV accuracy = %v on periodic load", acc)
	}
	if _, err := CrossValidate(slots, EditDistanceNN{}, 1, 8); err == nil {
		t.Fatal("folds < 2 should fail")
	}
	if _, err := CrossValidate(slots[:10], EditDistanceNN{}, 10, 8); err == nil {
		t.Fatal("too few steps for folds should fail")
	}
}

// On noisy periodic load, the NN model must beat last-value: that is the
// point of keeping a knowledge base (§IV-B).
func TestNNBeatsLastValueOnPeriodicLoad(t *testing.T) {
	// Period-4 load with distinctive transitions.
	patterns := [][]int{{5, 0}, {50, 10}, {100, 30}, {20, 5}}
	slots := make([]trace.Slot, 48)
	for i := range slots {
		slots[i] = slotOf(i, patterns[i%4]...)
	}
	nn, err := CrossValidate(slots, EditDistanceNN{}, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := CrossValidate(slots, LastValue{}, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nn <= lv {
		t.Fatalf("NN accuracy %v should beat last-value %v on periodic load", nn, lv)
	}
}

func TestAccuracyVsDataSize(t *testing.T) {
	slots := cycle(40, 8)
	points, err := AccuracyVsDataSize(slots, EditDistanceNN{}, []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	// More data must not hurt on periodic load; with a full period the
	// accuracy is perfect.
	last := points[len(points)-1]
	if last.Accuracy < 0.99 {
		t.Fatalf("accuracy at size 16 = %v, want ≈1", last.Accuracy)
	}
	if points[0].Accuracy > last.Accuracy+1e-9 {
		t.Fatalf("accuracy should grow with data: %v", points)
	}
	if _, err := AccuracyVsDataSize(slots, EditDistanceNN{}, []int{0}); err == nil {
		t.Fatal("size 0 should fail")
	}
	if _, err := AccuracyVsDataSize(slots, EditDistanceNN{}, []int{40}); err == nil {
		t.Fatal("size >= len should fail")
	}
	if _, err := AccuracyVsDataSize(slots, nil, []int{2}); err == nil {
		t.Fatal("nil predictor should fail")
	}
}

func TestPredictReturnsClone(t *testing.T) {
	slots := []trace.Slot{slotOf(0, 3)}
	pred, err := EditDistanceNN{}.Predict(slots)
	if err != nil {
		t.Fatal(err)
	}
	pred.Groups[0][0] = 424242
	if slots[0].Groups[0][0] == 424242 {
		t.Fatal("Predict must not alias history")
	}
}
