package predict

import (
	"testing"

	"accelcloud/internal/trace"
)

// slotOf is shared with predict_test.go.

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(nil, 4); err == nil {
		t.Fatal("nil predictor should fail")
	}
	if _, err := NewSession(EditDistanceNN{}, -1); err == nil {
		t.Fatal("negative bound should fail")
	}
	s, err := NewSession(EditDistanceNN{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Predict(); err == nil {
		t.Fatal("empty session should fail to predict")
	}
}

func TestSessionMatchesBatchPredict(t *testing.T) {
	slots := []trace.Slot{
		slotOf(0, 3, 1), slotOf(1, 5, 2), slotOf(2, 8, 3),
		slotOf(3, 5, 2), slotOf(4, 3, 1),
	}
	s, err := NewSession(EditDistanceNN{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, slot := range slots {
		s.Observe(slot)
		got, err := s.Predict()
		if err != nil {
			t.Fatal(err)
		}
		want, err := EditDistanceNN{}.Predict(slots[:i+1])
		if err != nil {
			t.Fatal(err)
		}
		gc, wc := got.Counts(), want.Counts()
		for g := range gc {
			if gc[g] != wc[g] {
				t.Fatalf("step %d group %d: session %d != batch %d", i, g, gc[g], wc[g])
			}
		}
	}
	if s.Len() != len(slots) {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSessionEvictsOldestSlots(t *testing.T) {
	s, err := NewSession(LastValue{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Observe(slotOf(i, i))
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	got, err := s.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts()[0] != 9 {
		t.Fatalf("last value = %d, want 9", got.Counts()[0])
	}
	// The retained window is the newest three slots.
	if s.history[0].Counts()[0] != 7 {
		t.Fatalf("oldest retained = %d, want 7", s.history[0].Counts()[0])
	}
}

func TestSessionObserveClones(t *testing.T) {
	s, err := NewSession(LastValue{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	slot := slotOf(0, 2)
	s.Observe(slot)
	slot.Groups[0][0] = 99
	got, err := s.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if got.Groups[0][0] == 99 {
		t.Fatal("session aliased the caller's slot")
	}
}
