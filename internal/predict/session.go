package predict

import (
	"errors"
	"fmt"

	"accelcloud/internal/trace"
)

// DefaultMaxHistory bounds a Session's knowledge base: with hourly
// slots this is about two weeks — past the point where the Fig 10a
// accuracy curve has flattened.
const DefaultMaxHistory = 336

// Session is the incremental, reusable-across-slots entry point control
// loops use: it owns a bounded sliding knowledge base and serves one
// prediction per observed slot without the caller rebuilding history
// slices. Each Observe appends the just-completed slot; Predict
// estimates the slot that comes next. The autoscaling reconciler
// (internal/autoscale, DESIGN.md §5) calls Observe/Predict once per
// slot boundary.
//
// A Session is not safe for concurrent use; the control loop is the
// single caller by design.
type Session struct {
	p       Predictor
	max     int
	history []trace.Slot
}

// NewSession builds a session around a predictor. maxHistory bounds the
// retained knowledge base (0 selects DefaultMaxHistory); the oldest
// slots are evicted first, keeping prediction cost constant over an
// unbounded run.
func NewSession(p Predictor, maxHistory int) (*Session, error) {
	if p == nil {
		return nil, errors.New("predict: nil predictor")
	}
	if maxHistory < 0 {
		return nil, fmt.Errorf("predict: negative history bound %d", maxHistory)
	}
	if maxHistory == 0 {
		maxHistory = DefaultMaxHistory
	}
	return &Session{p: p, max: maxHistory, history: make([]trace.Slot, 0, maxHistory)}, nil
}

// Observe appends a completed slot to the knowledge base, evicting the
// oldest slot when the bound is reached.
func (s *Session) Observe(slot trace.Slot) {
	if len(s.history) == s.max {
		copy(s.history, s.history[1:])
		s.history[len(s.history)-1] = slot.Clone()
		return
	}
	s.history = append(s.history, slot.Clone())
}

// Len reports the current knowledge-base size.
func (s *Session) Len() int { return len(s.history) }

// Predict estimates the next slot from the retained history. It fails
// only before the first Observe.
func (s *Session) Predict() (trace.Slot, error) {
	return s.p.Predict(s.history)
}
