// Package predict implements the paper's workload prediction model
// (§IV-B): history time slots form the knowledge base P; the next slot is
// approximated by the successor of the historical slot at minimum edit
// distance Δ from the current one. Since predictions always come from
// history, "dramatically growing loads are only ever matched to the
// largest load seen in the near history", which makes allocation
// conservative (§IV-B2).
//
// Baseline predictors (last-value, moving average) are included for the
// ablation experiments.
package predict

import (
	"errors"
	"fmt"

	"accelcloud/internal/editdist"
	"accelcloud/internal/stats"
	"accelcloud/internal/trace"
)

// Predictor estimates the next time slot from history.
type Predictor interface {
	// Name identifies the predictor in experiment output.
	Name() string
	// Predict returns the expected next slot given consecutive history
	// (oldest first, the last element being the current slot).
	Predict(history []trace.Slot) (trace.Slot, error)
}

// EditDistanceNN is the paper's model.
type EditDistanceNN struct{}

var _ Predictor = EditDistanceNN{}

// Name implements Predictor.
func (EditDistanceNN) Name() string { return "edit-distance-nn" }

// Predict implements Predictor: compute p_k = Δ(current, t_k) for every
// t_k in the knowledge base and return the slot following the minimizer.
// When the minimizer is the current (last) slot itself, its own value is
// returned — the conservative bootstrap behaviour.
func (EditDistanceNN) Predict(history []trace.Slot) (trace.Slot, error) {
	if len(history) == 0 {
		return trace.Slot{}, errors.New("predict: empty history")
	}
	current := history[len(history)-1]
	bestK := -1
	bestD := 0
	for k := range history {
		d := editdist.SlotDistance(current.Groups, history[k].Groups)
		if bestK == -1 || d < bestD {
			bestK, bestD = k, d
		}
	}
	if bestK+1 < len(history) {
		return history[bestK+1].Clone(), nil
	}
	return history[bestK].Clone(), nil
}

// LastValue predicts the next slot to equal the current one.
type LastValue struct{}

var _ Predictor = LastValue{}

// Name implements Predictor.
func (LastValue) Name() string { return "last-value" }

// Predict implements Predictor.
func (LastValue) Predict(history []trace.Slot) (trace.Slot, error) {
	if len(history) == 0 {
		return trace.Slot{}, errors.New("predict: empty history")
	}
	return history[len(history)-1].Clone(), nil
}

// MovingAverage predicts per-group counts as the mean of the last Window
// slots. The predicted slot carries synthetic user sets of that size
// (user identity is irrelevant to the allocator, which consumes counts).
type MovingAverage struct {
	Window int
}

var _ Predictor = MovingAverage{}

// Name implements Predictor.
func (MovingAverage) Name() string { return "moving-average" }

// Predict implements Predictor.
func (m MovingAverage) Predict(history []trace.Slot) (trace.Slot, error) {
	if len(history) == 0 {
		return trace.Slot{}, errors.New("predict: empty history")
	}
	w := m.Window
	if w <= 0 {
		w = 3
	}
	if w > len(history) {
		w = len(history)
	}
	tail := history[len(history)-w:]
	numGroups := 0
	for _, s := range tail {
		if len(s.Groups) > numGroups {
			numGroups = len(s.Groups)
		}
	}
	out := trace.Slot{Start: history[len(history)-1].Start, Groups: make([][]int, numGroups)}
	for g := 0; g < numGroups; g++ {
		sum := 0
		for _, s := range tail {
			if g < len(s.Groups) {
				sum += len(s.Groups[g])
			}
		}
		count := (sum + w/2) / w // rounded mean
		users := make([]int, count)
		for i := range users {
			users[i] = i
		}
		out.Groups[g] = users
	}
	return out, nil
}

// CountsAccuracy grades a prediction against the truth on [0, 1] using
// the symmetric accuracy of per-group user counts, averaged across
// groups — "accuracy of the prediction model to estimate the number of
// users in each acceleration group" (Fig 10a caption).
func CountsAccuracy(predicted, actual trace.Slot) float64 {
	n := len(predicted.Groups)
	if len(actual.Groups) > n {
		n = len(actual.Groups)
	}
	if n == 0 {
		return 1
	}
	p := make([]float64, n)
	a := make([]float64, n)
	for g := 0; g < n; g++ {
		if g < len(predicted.Groups) {
			p[g] = float64(len(predicted.Groups[g]))
		}
		if g < len(actual.Groups) {
			a[g] = float64(len(actual.Groups[g]))
		}
	}
	return stats.MeanSymmetricAccuracy(p, a)
}

// Evaluate walks the slot sequence, predicting each slot from its prefix
// and scoring against the truth. It skips the first minHistory slots to
// give the model a bootstrap window. Returns per-step accuracies.
func Evaluate(slots []trace.Slot, p Predictor, minHistory int) ([]float64, error) {
	if p == nil {
		return nil, errors.New("predict: nil predictor")
	}
	if minHistory < 1 {
		minHistory = 1
	}
	if len(slots) <= minHistory {
		return nil, fmt.Errorf("predict: need more than %d slots, got %d", minHistory, len(slots))
	}
	var out []float64
	for i := minHistory; i < len(slots); i++ {
		pred, err := p.Predict(slots[:i])
		if err != nil {
			return nil, fmt.Errorf("predict: step %d: %w", i, err)
		}
		out = append(out, CountsAccuracy(pred, slots[i]))
	}
	return out, nil
}

// CrossValidate performs k-fold cross validation in the paper's style
// (§VI-C2): the prediction steps are partitioned into k folds; each
// fold's accuracy is the mean over its steps; the reported accuracy is
// the mean over folds.
func CrossValidate(slots []trace.Slot, p Predictor, folds, minHistory int) (float64, error) {
	if folds < 2 {
		return 0, fmt.Errorf("predict: need >=2 folds, got %d", folds)
	}
	accs, err := Evaluate(slots, p, minHistory)
	if err != nil {
		return 0, err
	}
	if len(accs) < folds {
		return 0, fmt.Errorf("predict: %d evaluation steps for %d folds", len(accs), folds)
	}
	foldSums := make([]float64, folds)
	foldN := make([]int, folds)
	for i, a := range accs {
		f := i % folds
		foldSums[f] += a
		foldN[f]++
	}
	total := 0.0
	for f := 0; f < folds; f++ {
		total += foldSums[f] / float64(foldN[f])
	}
	return total / float64(folds), nil
}

// DataSizePoint is one point of Fig 10a: model accuracy given `Size`
// slots of training data.
type DataSizePoint struct {
	Size     int
	Accuracy float64
}

// AccuracyVsDataSize reproduces Fig 10a: for each prefix size, evaluate
// the predictor on the next slots using only that much history.
func AccuracyVsDataSize(slots []trace.Slot, p Predictor, sizes []int) ([]DataSizePoint, error) {
	if p == nil {
		return nil, errors.New("predict: nil predictor")
	}
	var out []DataSizePoint
	for _, size := range sizes {
		if size < 1 || size >= len(slots) {
			return nil, fmt.Errorf("predict: size %d outside [1, %d)", size, len(slots))
		}
		// Evaluate each step i >= size using only the `size` most recent
		// slots as the knowledge base.
		var acc []float64
		for i := size; i < len(slots); i++ {
			lo := i - size
			pred, err := p.Predict(slots[lo:i])
			if err != nil {
				return nil, err
			}
			acc = append(acc, CountsAccuracy(pred, slots[i]))
		}
		m, err := stats.Mean(acc)
		if err != nil {
			return nil, err
		}
		out = append(out, DataSizePoint{Size: size, Accuracy: m})
	}
	return out, nil
}
