// Package editdist implements the edit distances the paper's workload
// predictor is built on (§IV-B1): the plain Levenshtein distance between
// sequences, the user-set distance δ between two acceleration groups, the
// time-slot distance Δ, and the normalized edit distance of Marzal & Vidal
// (the paper's reference [33]) computed exactly with Dinkelbach's
// fractional-programming iteration.
package editdist

// Costs parameterizes the weighted edit distance. The zero value is not
// useful; use UnitCosts for the classic Levenshtein weights.
type Costs struct {
	Insert     float64
	Delete     float64
	Substitute float64
}

// UnitCosts are the classic Levenshtein weights (all operations cost 1).
func UnitCosts() Costs {
	return Costs{Insert: 1, Delete: 1, Substitute: 1}
}

// Levenshtein returns the unit-cost edit distance between a and b.
func Levenshtein[T comparable](a, b []T) int {
	d, _ := Weighted(a, b, UnitCosts())
	return int(d + 0.5)
}

// Weighted returns the minimal total weight of an edit path from a to b
// under the given costs, along with the length (number of operations,
// matches included) of that minimal-weight path. Matches cost zero.
//
// The path length is needed by the normalized edit distance; among all
// minimal-weight paths, the one with the greatest length is reported,
// which is the convention that makes the Dinkelbach iteration converge to
// the true normalized distance.
func Weighted[T comparable](a, b []T, c Costs) (weight float64, pathLen int) {
	return weightedLambda(a, b, c, 0)
}

// weightedLambda minimizes weight(P) - lambda*len(P) over edit paths P and
// returns the weight and length of the minimizing path. With lambda = 0
// this is the ordinary weighted edit distance (ties broken toward longer
// paths because matches and all operations contribute -lambda <= 0;
// at lambda = 0 we break ties explicitly toward longer paths).
func weightedLambda[T comparable](a, b []T, c Costs, lambda float64) (weight float64, pathLen int) {
	n, m := len(a), len(b)
	// score[i][j]: minimal weight - lambda*len; length tracks the path
	// length of the chosen optimum (longest among equals).
	type cell struct {
		score  float64
		weight float64
		length int
	}
	prev := make([]cell, m+1)
	curr := make([]cell, m+1)
	prev[0] = cell{}
	for j := 1; j <= m; j++ {
		prev[j] = cell{
			score:  prev[j-1].score + c.Insert - lambda,
			weight: prev[j-1].weight + c.Insert,
			length: prev[j-1].length + 1,
		}
	}
	for i := 1; i <= n; i++ {
		curr[0] = cell{
			score:  prev[0].score + c.Delete - lambda,
			weight: prev[0].weight + c.Delete,
			length: prev[0].length + 1,
		}
		for j := 1; j <= m; j++ {
			sub := c.Substitute
			if a[i-1] == b[j-1] {
				sub = 0
			}
			best := cell{
				score:  prev[j-1].score + sub - lambda,
				weight: prev[j-1].weight + sub,
				length: prev[j-1].length + 1,
			}
			if cand := (cell{
				score:  prev[j].score + c.Delete - lambda,
				weight: prev[j].weight + c.Delete,
				length: prev[j].length + 1,
			}); better(cand, best) {
				best = cand
			}
			if cand := (cell{
				score:  curr[j-1].score + c.Insert - lambda,
				weight: curr[j-1].weight + c.Insert,
				length: curr[j-1].length + 1,
			}); better(cand, best) {
				best = cand
			}
			curr[j] = best
		}
		prev, curr = curr, prev
	}
	return prev[m].weight, prev[m].length
}

const scoreEps = 1e-12

// better reports whether x improves on y: strictly lower score, or equal
// score with a longer path.
func better(x, y struct {
	score  float64
	weight float64
	length int
}) bool {
	if x.score < y.score-scoreEps {
		return true
	}
	if x.score > y.score+scoreEps {
		return false
	}
	return x.length > y.length
}

// Normalized returns the Marzal–Vidal normalized edit distance between a
// and b under the given costs: the minimum over edit paths P of
// weight(P)/len(P), with Normalized(∅, ∅) = 0. It is computed exactly via
// Dinkelbach's iteration: repeatedly minimize weight(P) - λ·len(P) and
// update λ until the optimum reaches zero.
func Normalized[T comparable](a, b []T, c Costs) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	w, l := Weighted(a, b, c)
	lambda := w / float64(l)
	for iter := 0; iter < 64; iter++ {
		w, l = weightedLambda(a, b, c, lambda)
		next := w / float64(l)
		if next >= lambda-scoreEps {
			return lambda
		}
		lambda = next
	}
	return lambda
}
