package editdist

import (
	"math"
	"testing"
)

// bruteNED enumerates every edit path between a and b and returns the
// exact minimum of weight(P)/len(P) — the definition of the Marzal–Vidal
// normalized edit distance. Exponential, usable only for tiny strings;
// it certifies the Dinkelbach implementation.
func bruteNED(a, b []byte, c Costs) float64 {
	best := math.Inf(1)
	var walk func(i, j int, weight float64, length int)
	walk = func(i, j int, weight float64, length int) {
		if i == len(a) && j == len(b) {
			if length == 0 {
				best = 0
				return
			}
			if r := weight / float64(length); r < best {
				best = r
			}
			return
		}
		if i < len(a) && j < len(b) {
			sub := c.Substitute
			if a[i] == b[j] {
				sub = 0
			}
			walk(i+1, j+1, weight+sub, length+1)
		}
		if i < len(a) {
			walk(i+1, j, weight+c.Delete, length+1)
		}
		if j < len(b) {
			walk(i, j+1, weight+c.Insert, length+1)
		}
	}
	walk(0, 0, 0, 0)
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// Dinkelbach must equal the exhaustive optimum on every string pair over
// a small alphabet up to length 4, for unit and skewed costs.
func TestNormalizedMatchesBruteForceExhaustive(t *testing.T) {
	costs := []Costs{
		UnitCosts(),
		{Insert: 1, Delete: 2, Substitute: 3},
		{Insert: 0.5, Delete: 0.5, Substitute: 2},
	}
	alphabet := []byte("ab")
	var strings [][]byte
	strings = append(strings, []byte{})
	var grow func(prefix []byte)
	grow = func(prefix []byte) {
		if len(prefix) == 4 {
			return
		}
		for _, ch := range alphabet {
			next := append(append([]byte{}, prefix...), ch)
			strings = append(strings, next)
			grow(next)
		}
	}
	grow(nil)
	for _, c := range costs {
		for _, a := range strings {
			for _, b := range strings {
				want := bruteNED(a, b, c)
				got := Normalized(a, b, c)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("NED(%q,%q,%+v) = %v, brute force %v", a, b, c, got, want)
				}
			}
		}
	}
}

// The normalized distance is bounded by the plain distance over the
// shorter possible path and can be strictly below d/max(|a|,|b|)
// normalizations used in ad-hoc implementations.
func TestNormalizedTightness(t *testing.T) {
	c := Costs{Insert: 1, Delete: 1, Substitute: 4}
	a, b := []byte("aaab"), []byte("b")
	// Plain weighted distance: delete 3 a's = 3 (vs substitutions 4
	// each); best path: 3 deletes + 1 match = weight 3, length 4.
	w, l := Weighted(a, b, c)
	if w != 3 || l != 4 {
		t.Fatalf("weighted = %v/%d, want 3/4", w, l)
	}
	got := Normalized(a, b, c)
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("NED = %v, want 0.75", got)
	}
}
