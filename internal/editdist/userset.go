package editdist

import "sort"

// GroupDistance is δ of §IV-B1: the distance between the user sets of the
// same acceleration group in two time slots. It is 0 when the sets are
// identical, and otherwise the edit distance D > 0 between the two user-id
// sequences in canonical (sorted) order.
//
// For sorted unique sequences the Levenshtein distance equals the size of
// the symmetric difference minus the number of substitutable pairs; using
// the real sequence edit distance (rather than a plain set difference)
// matches the paper's use of the RecordLinkage edit distance.
func GroupDistance(usersX, usersY []int) int {
	if equalIntSlices(usersX, usersY) {
		return 0
	}
	return Levenshtein(canonical(usersX), canonical(usersY))
}

// SlotDistance is Δ of §IV-B1: the sum of per-group distances δ across the
// N acceleration groups of two time slots. Slots with differing group
// counts are compared over the longer prefix, with missing groups treated
// as empty.
func SlotDistance(slotX, slotY [][]int) int {
	n := len(slotX)
	if len(slotY) > n {
		n = len(slotY)
	}
	total := 0
	for g := 0; g < n; g++ {
		var ux, uy []int
		if g < len(slotX) {
			ux = slotX[g]
		}
		if g < len(slotY) {
			uy = slotY[g]
		}
		total += GroupDistance(ux, uy)
	}
	return total
}

// SetDifference returns |A Δ B|, the symmetric-difference cardinality of
// two user-id sets. It is a cheaper alternative distance used in ablation
// experiments.
func SetDifference(usersX, usersY []int) int {
	inX := make(map[int]struct{}, len(usersX))
	for _, u := range usersX {
		inX[u] = struct{}{}
	}
	inY := make(map[int]struct{}, len(usersY))
	for _, u := range usersY {
		inY[u] = struct{}{}
	}
	diff := 0
	for u := range inX {
		if _, ok := inY[u]; !ok {
			diff++
		}
	}
	for u := range inY {
		if _, ok := inX[u]; !ok {
			diff++
		}
	}
	return diff
}

// canonical returns a sorted, deduplicated copy of users.
func canonical(users []int) []int {
	out := make([]int, len(users))
	copy(out, users)
	sort.Ints(out)
	dst := out[:0]
	for i, u := range out {
		if i > 0 && out[i-1] == u {
			continue
		}
		dst = append(dst, u)
	}
	return dst
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
