package editdist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnownValues(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want int
	}{
		{"empty-empty", "", "", 0},
		{"empty-word", "", "abc", 3},
		{"word-empty", "abc", "", 3},
		{"identical", "kitten", "kitten", 0},
		{"kitten-sitting", "kitten", "sitting", 3},
		{"flaw-lawn", "flaw", "lawn", 2},
		{"single-sub", "a", "b", 1},
		{"prefix", "abc", "abcd", 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Levenshtein([]byte(tt.a), []byte(tt.b))
			if got != tt.want {
				t.Fatalf("Levenshtein(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestLevenshteinInts(t *testing.T) {
	if got := Levenshtein([]int{1, 2, 3}, []int{1, 3}); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
	if got := Levenshtein([]int{1, 2}, []int{3, 4}); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
}

func TestWeightedCustomCosts(t *testing.T) {
	// Substitution costs 3, insert+delete costs 1+1=2; the cheaper path
	// for "a"->"b" is delete+insert.
	c := Costs{Insert: 1, Delete: 1, Substitute: 3}
	w, l := Weighted([]byte("a"), []byte("b"), c)
	if w != 2 {
		t.Fatalf("weight = %v, want 2", w)
	}
	if l != 2 {
		t.Fatalf("pathLen = %d, want 2 (delete+insert)", l)
	}
}

func TestWeightedPathLengthPrefersLonger(t *testing.T) {
	// For identical strings the minimal weight is 0 and the longest
	// minimal path is all matches: length = len.
	w, l := Weighted([]byte("hello"), []byte("hello"), UnitCosts())
	if w != 0 || l != 5 {
		t.Fatalf("weight,len = %v,%d, want 0,5", w, l)
	}
}

func TestNormalizedKnownValues(t *testing.T) {
	c := UnitCosts()
	if got := Normalized[byte](nil, nil, c); got != 0 {
		t.Fatalf("Normalized(∅,∅) = %v, want 0", got)
	}
	// Completely different single letters: best path is substitute
	// (1 op, weight 1 -> 1.0) vs delete+insert (2 ops, weight 2 -> 1.0).
	if got := Normalized([]byte("a"), []byte("b"), c); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Normalized(a,b) = %v, want 1", got)
	}
	// Identical strings normalize to 0.
	if got := Normalized([]byte("same"), []byte("same"), c); got != 0 {
		t.Fatalf("Normalized(same,same) = %v, want 0", got)
	}
	// One edit among many matches: path weight 1, length 7 ("kitten" ->
	// "mitten": substitute + 5 matches = 6 ops) -> 1/6.
	if got := Normalized([]byte("kitten"), []byte("mitten"), c); math.Abs(got-1.0/6.0) > 1e-9 {
		t.Fatalf("Normalized(kitten,mitten) = %v, want %v", got, 1.0/6.0)
	}
}

// The normalized edit distance can be strictly smaller than
// plain-distance / max-length; this is Marzal & Vidal's motivating
// observation. Verify the Dinkelbach solution is never larger than the
// naive normalization by longest path.
func TestNormalizedUpperBound(t *testing.T) {
	c := UnitCosts()
	pairs := [][2]string{
		{"abc", "xbz"}, {"aaaa", "aa"}, {"abcdef", "badcfe"}, {"x", "xxxxxxx"},
	}
	for _, p := range pairs {
		a, b := []byte(p[0]), []byte(p[1])
		w, l := Weighted(a, b, c)
		naive := w / float64(l)
		got := Normalized(a, b, c)
		if got > naive+1e-9 {
			t.Fatalf("Normalized(%q,%q) = %v > naive %v", p[0], p[1], got, naive)
		}
	}
}

// Property: Levenshtein is a metric on byte strings.
func TestLevenshteinMetricProperty(t *testing.T) {
	cap16 := func(s []byte) []byte {
		if len(s) > 16 {
			return s[:16]
		}
		return s
	}
	symmetry := func(a, b []byte) bool {
		a, b = cap16(a), cap16(b)
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(symmetry, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("symmetry: %v", err)
	}
	identity := func(a []byte) bool {
		a = cap16(a)
		return Levenshtein(a, a) == 0
	}
	if err := quick.Check(identity, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("identity: %v", err)
	}
	triangle := func(a, b, c []byte) bool {
		a, b, c = cap16(a), cap16(b), cap16(c)
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("triangle: %v", err)
	}
	bounds := func(a, b []byte) bool {
		a, b = cap16(a), cap16(b)
		d := Levenshtein(a, b)
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		minDiff := len(a) - len(b)
		if minDiff < 0 {
			minDiff = -minDiff
		}
		return d >= minDiff && d <= maxLen
	}
	if err := quick.Check(bounds, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("bounds: %v", err)
	}
}

// Property: Normalized lies in [0, max(ins,del,sub)] and is symmetric for
// symmetric costs.
func TestNormalizedProperty(t *testing.T) {
	c := UnitCosts()
	f := func(a, b []byte) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		d := Normalized(a, b, c)
		d2 := Normalized(b, a, c)
		return d >= 0 && d <= 1+1e-9 && math.Abs(d-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupDistance(t *testing.T) {
	tests := []struct {
		name string
		x, y []int
		want int
	}{
		{"identical", []int{1, 2, 3}, []int{1, 2, 3}, 0},
		{"both-empty", nil, nil, 0},
		{"one-joined", []int{1, 2}, []int{1, 2, 9}, 1},
		{"one-left", []int{1, 2, 9}, []int{1, 2}, 1},
		{"swap", []int{1, 2, 5}, []int{1, 2, 7}, 1},
		{"disjoint", []int{1, 2}, []int{3, 4}, 2},
		{"unsorted-equivalent", []int{3, 1, 2}, []int{1, 2, 3}, 0},
		{"duplicates-collapse", []int{1, 1, 2}, []int{1, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := GroupDistance(tt.x, tt.y); got != tt.want {
				t.Fatalf("GroupDistance(%v,%v) = %d, want %d", tt.x, tt.y, got, tt.want)
			}
		})
	}
}

func TestGroupDistanceUnsortedZero(t *testing.T) {
	// Equal as raw sequences -> short-circuit 0 without canonicalizing.
	if got := GroupDistance([]int{5, 3}, []int{5, 3}); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
}

func TestSlotDistance(t *testing.T) {
	x := [][]int{{1, 2}, {3}, {}}
	y := [][]int{{1, 2}, {3, 4}, {5}}
	// group0: 0, group1: 1 (insert 4), group2: 1 (insert 5) => 2
	if got := SlotDistance(x, y); got != 2 {
		t.Fatalf("SlotDistance = %d, want 2", got)
	}
	if got := SlotDistance(x, x); got != 0 {
		t.Fatalf("SlotDistance(x,x) = %d, want 0", got)
	}
}

func TestSlotDistanceRaggedSlots(t *testing.T) {
	x := [][]int{{1}}
	y := [][]int{{1}, {2, 3}}
	if got := SlotDistance(x, y); got != 2 {
		t.Fatalf("SlotDistance = %d, want 2 (missing group treated as empty)", got)
	}
}

func TestSetDifference(t *testing.T) {
	if got := SetDifference([]int{1, 2, 3}, []int{2, 3, 4}); got != 2 {
		t.Fatalf("SetDifference = %d, want 2", got)
	}
	if got := SetDifference(nil, nil); got != 0 {
		t.Fatalf("SetDifference(∅,∅) = %d, want 0", got)
	}
	if got := SetDifference([]int{1}, nil); got != 1 {
		t.Fatalf("SetDifference = %d, want 1", got)
	}
}

// Property: for sorted unique sets, GroupDistance is at most the symmetric
// difference and at least half of it (each substitution fixes two
// mismatches, insert/delete fix one).
func TestGroupDistanceVsSetDifferenceProperty(t *testing.T) {
	f := func(xr, yr []uint8) bool {
		x := make([]int, 0, len(xr))
		for _, v := range xr {
			x = append(x, int(v)%32)
		}
		y := make([]int, 0, len(yr))
		for _, v := range yr {
			y = append(y, int(v)%32)
		}
		d := GroupDistance(x, y)
		sd := SetDifference(x, y)
		return d <= sd && 2*d >= sd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
