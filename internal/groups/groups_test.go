package groups

import (
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/tasks"
	"accelcloud/internal/workload"
)

func benchAll(t *testing.T, cfg BenchmarkConfig) []Measurement {
	t.Helper()
	var out []Measurement
	for _, typ := range cloud.DefaultCatalog().Types() {
		m, err := Benchmark(typ, cfg)
		if err != nil {
			t.Fatalf("benchmark %s: %v", typ.Name, err)
		}
		out = append(out, m)
	}
	return out
}

// quickCfg keeps unit tests fast: fewer waves and load levels than the
// full Fig 4 regeneration.
func quickCfg() BenchmarkConfig {
	cfg := DefaultBenchmarkConfig()
	cfg.Waves = 6
	cfg.LoadLevels = []int{1, 20, 60, 100}
	return cfg
}

func TestBenchmarkCurveShape(t *testing.T) {
	cfg := quickCfg()
	nano, err := cloud.DefaultCatalog().ByName("t2.nano")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Benchmark(nano, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Curve) != len(cfg.LoadLevels) {
		t.Fatalf("curve has %d points, want %d", len(m.Curve), len(cfg.LoadLevels))
	}
	// Monotone-ish growth: mean at 100 users far above solo.
	if m.Curve[3].MeanMs < 20*m.Curve[0].MeanMs {
		t.Fatalf("t2.nano mean at 100 users %v ms should dwarf solo %v ms",
			m.Curve[3].MeanMs, m.Curve[0].MeanMs)
	}
	if m.SoloMs != m.Curve[0].MeanMs {
		t.Fatal("SoloMs must equal the 1-user mean")
	}
	if m.Capacity == 0 {
		t.Fatal("capacity should be positive")
	}
}

func TestBenchmarkDeterminism(t *testing.T) {
	cfg := quickCfg()
	typ, err := cloud.DefaultCatalog().ByName("t2.small")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Benchmark(typ, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Benchmark(typ, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("benchmark not deterministic at point %d: %+v vs %+v", i, a.Curve[i], b.Curve[i])
		}
	}
}

func TestBenchmarkValidation(t *testing.T) {
	nano, _ := cloud.DefaultCatalog().ByName("t2.nano")
	bad := DefaultBenchmarkConfig()
	bad.LoadLevels = nil
	if _, err := Benchmark(nano, bad); err == nil {
		t.Fatal("no load levels should fail")
	}
	bad2 := DefaultBenchmarkConfig()
	bad2.Waves = 0
	if _, err := Benchmark(nano, bad2); err == nil {
		t.Fatal("zero waves should fail")
	}
	bad3 := DefaultBenchmarkConfig()
	bad3.SLA = 0
	if _, err := Benchmark(nano, bad3); err == nil {
		t.Fatal("zero SLA should fail")
	}
	bad4 := DefaultBenchmarkConfig()
	bad4.Pool = nil
	if _, err := Benchmark(nano, bad4); err == nil {
		t.Fatal("nil pool should fail")
	}
	bad5 := DefaultBenchmarkConfig()
	bad5.LoadLevels = []int{0}
	if _, err := Benchmark(nano, bad5); err == nil {
		t.Fatal("zero load level should fail")
	}
	if _, err := Benchmark(cloud.InstanceType{}, DefaultBenchmarkConfig()); err == nil {
		t.Fatal("invalid type should fail")
	}
}

// The paper's central §VI-A result: the full catalog classifies into
// 5 levels — group 0 = t2.micro (anomaly), level 1 = {t2.nano, t2.small},
// level 2 = {t2.medium, t2.large}, level 3 = {m4.4xlarge, m4.10xlarge},
// level 4 = {c4.8xlarge}.
func TestClassifyReproducesPaperLevels(t *testing.T) {
	ms := benchAll(t, quickCfg())
	g, err := Classify(ms, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLevels() != 5 {
		for _, l := range g.Levels {
			t.Logf("level %d: %v (solo %.2f ms)", l.Index, l.Types, l.SoloMs)
		}
		t.Fatalf("got %d levels, want 5", g.NumLevels())
	}
	wantLevels := map[string]int{
		"t2.micro":    0,
		"t2.nano":     1,
		"t2.small":    1,
		"t2.medium":   2,
		"t2.large":    2,
		"m4.4xlarge":  3,
		"m4.10xlarge": 3,
		"c4.8xlarge":  4,
	}
	for typ, want := range wantLevels {
		got, ok := g.LevelOf(typ)
		if !ok {
			t.Fatalf("%s not classified", typ)
		}
		if got != want {
			for _, l := range g.Levels {
				t.Logf("level %d: %v (solo %.2f ms)", l.Index, l.Types, l.SoloMs)
			}
			t.Fatalf("%s in level %d, want %d", typ, got, want)
		}
	}
}

// Fig 5's acceleration factors from the classified grouping.
func TestAccelerationFactors(t *testing.T) {
	ms := benchAll(t, quickCfg())
	g, err := Classify(ms, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	r21, err := g.AccelerationFactor(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r31, err := g.AccelerationFactor(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := g.AccelerationFactor(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r21-1.25) > 0.15 {
		t.Errorf("level2/level1 = %.2f, paper ≈1.25", r21)
	}
	if math.Abs(r31-1.73) > 0.25 {
		t.Errorf("level3/level1 = %.2f, paper ≈1.73", r31)
	}
	if math.Abs(r32-1.36) > 0.20 {
		t.Errorf("level3/level2 = %.2f, paper ≈1.36", r32)
	}
	if _, err := g.AccelerationFactor(0, 99); err == nil {
		t.Fatal("out-of-range level should fail")
	}
}

// Fig 4's qualitative claim: slope decreases with instance capability.
func TestSlopeDecreasesWithCapability(t *testing.T) {
	cfg := quickCfg()
	ct := cloud.DefaultCatalog()
	nano, _ := ct.ByName("t2.nano")
	large, _ := ct.ByName("t2.large")
	big, _ := ct.ByName("m4.10xlarge")
	mNano, err := Benchmark(nano, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mLarge, err := Benchmark(large, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mBig, err := Benchmark(big, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sNano, sLarge, sBig := Slope(mNano), Slope(mLarge), Slope(mBig)
	if !(sNano > sLarge && sLarge > sBig) {
		t.Fatalf("slopes %v > %v > %v expected (steeper on weaker instances)", sNano, sLarge, sBig)
	}
	if sBig < 0 {
		t.Fatalf("slope must not be negative, got %v", sBig)
	}
}

func TestClassifyValidation(t *testing.T) {
	if _, err := Classify(nil, 0.1); err == nil {
		t.Fatal("empty measurements should fail")
	}
	if _, err := Classify([]Measurement{{Type: "x", SoloMs: 1}}, 0); err == nil {
		t.Fatal("zero tolerance should fail")
	}
	if _, err := Classify([]Measurement{{Type: "x", SoloMs: 0}}, 0.1); err == nil {
		t.Fatal("zero solo time should fail")
	}
}

func TestManualGrouping(t *testing.T) {
	g, err := Manual(map[string]int{
		"t2.nano":    1,
		"t2.large":   2,
		"m4.4xlarge": 3,
	}, map[string]int{"t2.nano": 40, "t2.large": 90, "m4.4xlarge": 400})
	if err != nil {
		t.Fatal(err)
	}
	// Levels 0..3 exist (0 empty).
	if g.NumLevels() != 4 {
		t.Fatalf("got %d levels, want 4", g.NumLevels())
	}
	if lvl, ok := g.LevelOf("t2.large"); !ok || lvl != 2 {
		t.Fatalf("t2.large level = %d/%v", lvl, ok)
	}
	if g.Levels[2].Capacity != 90 {
		t.Fatalf("level 2 capacity = %d, want 90", g.Levels[2].Capacity)
	}
	if len(g.Levels[0].Types) != 0 {
		t.Fatal("level 0 should be empty")
	}
	if _, err := Manual(nil, nil); err == nil {
		t.Fatal("empty assignment should fail")
	}
	if _, err := Manual(map[string]int{"x": -1}, nil); err == nil {
		t.Fatal("negative level should fail")
	}
}

func TestSlopeDegenerate(t *testing.T) {
	if got := Slope(Measurement{}); got != 0 {
		t.Fatalf("empty slope = %v, want 0", got)
	}
	m := Measurement{Curve: []LoadPoint{{Users: 5, MeanMs: 10}, {Users: 5, MeanMs: 20}}}
	if got := Slope(m); got != 0 {
		t.Fatalf("degenerate-x slope = %v, want 0", got)
	}
}

func TestBenchmarkFixedTask(t *testing.T) {
	cfg := quickCfg()
	cfg.FixedTask = "minimax"
	cfg.Sizer = workload.FixedSizer{Size: 8}
	cfg.LoadLevels = []int{1, 10}
	cfg.Pool = tasks.DefaultPool()
	nano, _ := cloud.DefaultCatalog().ByName("t2.nano")
	m, err := Benchmark(nano, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// minimax size 8 = 8! = 40320 units at 200k/s ≈ 201.6 ms solo.
	want := 40320.0 / 200000 * 1000
	if math.Abs(m.SoloMs-want)/want > 0.05 {
		t.Fatalf("solo = %v ms, want ≈%v ms", m.SoloMs, want)
	}
	_ = time.Second
}

// A parallel Benchmark must reproduce the serial measurement exactly:
// every load level owns its own environment and RNG stream, so worker
// count cannot leak into the curve.
func TestBenchmarkParallelMatchesSerial(t *testing.T) {
	cfg := quickCfg()
	nano, err := cloud.DefaultCatalog().ByName("t2.nano")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Benchmark(nano, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		cfg.Parallelism = workers
		par, err := Benchmark(nano, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("parallelism=%d measurement differs from serial", workers)
		}
	}
}
