// Package groups implements the paper's acceleration-group
// characterization (§VI-A, §IV-C1): stress each instance type with
// concurrent batches, measure how response time degrades as users are
// added (Fig 4), derive the solo acceleration and the capacity under a
// response-time SLA, and cluster instance types into acceleration levels
// — servers with indistinguishable acceleration land in the same group,
// which is how the paper discovers that differently-priced servers can
// provide the same level (§VI-A2).
package groups

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/qsim"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
	"accelcloud/internal/workload"
)

// LoadPoint is one point of a Fig 4 curve.
type LoadPoint struct {
	Users  int
	MeanMs float64
	SDMs   float64
	P5Ms   float64
	P95Ms  float64
}

// Measurement is the benchmark result for one instance type.
type Measurement struct {
	Type string
	// Curve holds response-time statistics per load level (Fig 4).
	Curve []LoadPoint
	// SoloMs is the mean response time with a single user — the
	// inverse of the type's acceleration.
	SoloMs float64
	// Capacity is the largest benchmarked user count whose mean
	// response time met the SLA (the K_s of §IV-C).
	Capacity int
}

// BenchmarkConfig parameterizes the characterization run.
type BenchmarkConfig struct {
	// LoadLevels are the concurrent-user counts to probe; the paper uses
	// 1 and 10..100 step 10.
	LoadLevels []int
	// Waves is how many benchmark waves to average per load level (the
	// paper stresses each server for 3 hours; waves arrive 1 minute
	// apart).
	Waves int
	// WaveInterval is the cool-down between waves.
	WaveInterval time.Duration
	// SLA is the response-time bound defining capacity (§IV-C1's
	// "minimum level of acceleration", e.g. 500 ms).
	SLA time.Duration
	// Pool and Sizer define the request mix.
	Pool  *tasks.Pool
	Sizer workload.Sizer
	// FixedTask pins the benchmark to one task (Fig 5's static minimax);
	// empty means random pool draws.
	FixedTask string
	// Seed drives the deterministic workload draws.
	Seed int64
	// Parallelism bounds how many load levels run concurrently. Every
	// level owns its own simulation environment and workload stream, so
	// the measurement is bit-identical at any value; <= 1 runs serially.
	Parallelism int
}

// DefaultBenchmarkConfig mirrors the paper's §VI-A1 setup, scaled from
// 3 hours to a statistically equivalent 30 waves.
func DefaultBenchmarkConfig() BenchmarkConfig {
	return BenchmarkConfig{
		LoadLevels:   []int{1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		Waves:        30,
		WaveInterval: time.Minute,
		SLA:          500 * time.Millisecond,
		Pool:         tasks.DefaultPool(),
		Sizer:        workload.DefaultSizer(),
		Seed:         1,
	}
}

func (c BenchmarkConfig) validate() error {
	if len(c.LoadLevels) == 0 {
		return errors.New("groups: no load levels")
	}
	for _, l := range c.LoadLevels {
		if l <= 0 {
			return fmt.Errorf("groups: load level %d <= 0", l)
		}
	}
	if c.Waves <= 0 {
		return fmt.Errorf("groups: waves %d <= 0", c.Waves)
	}
	if c.WaveInterval <= 0 {
		return fmt.Errorf("groups: wave interval %v <= 0", c.WaveInterval)
	}
	if c.SLA <= 0 {
		return fmt.Errorf("groups: SLA %v <= 0", c.SLA)
	}
	if c.Pool == nil || c.Sizer == nil {
		return errors.New("groups: nil pool or sizer")
	}
	return nil
}

// Benchmark characterizes one instance type: fresh instance, batch waves
// at each load level, response-time statistics per level.
func Benchmark(typ cloud.InstanceType, cfg BenchmarkConfig) (Measurement, error) {
	if err := cfg.validate(); err != nil {
		return Measurement{}, err
	}
	if err := typ.Validate(); err != nil {
		return Measurement{}, err
	}
	m := Measurement{Type: typ.Name}
	// Load levels are mutually independent — each owns a fresh
	// environment, instance and workload stream — so they shard across a
	// bounded pool. The curve slot a level writes depends only on its
	// index, keeping the measurement bit-identical at any parallelism.
	m.Curve = make([]LoadPoint, len(cfg.LoadLevels))
	err := sim.FanOutErr(len(cfg.LoadLevels), cfg.Parallelism, func(li int) error {
		users := cfg.LoadLevels[li]
		env := sim.NewEnvironment()
		inst, err := cloud.NewInstance("bench-"+typ.Name, typ, env.Now())
		if err != nil {
			return err
		}
		srv, err := qsim.NewServer(env, inst, qsim.Config{})
		if err != nil {
			return err
		}
		// The stream is keyed by load level but NOT by instance type:
		// every type faces the identical task sequence at each level, so
		// response-time ratios across types reflect speed, not draw
		// luck (a paired benchmark).
		rng := sim.NewRNG(cfg.Seed).StreamN("bench", users)
		reqs, err := workload.GenerateConcurrent(rng, env.Now(), workload.ConcurrentConfig{
			Users: users, Waves: cfg.Waves, WaveInterval: cfg.WaveInterval,
			Pool: cfg.Pool, Sizer: cfg.Sizer, FixedTask: cfg.FixedTask,
		})
		if err != nil {
			return err
		}
		var ms []float64
		for _, req := range reqs {
			work := req.Work
			if err := env.ScheduleAt(req.At, func() {
				// Submitting generated work cannot fail validation.
				_ = srv.Submit(work, func(o qsim.Outcome) {
					if !o.Dropped {
						ms = append(ms, float64(o.Latency)/float64(time.Millisecond))
					}
				})
			}); err != nil {
				return err
			}
		}
		if err := env.Run(); err != nil {
			return err
		}
		if len(ms) == 0 {
			return fmt.Errorf("groups: no completions for %s at load %d", typ.Name, users)
		}
		sum, err := stats.Summarize(ms)
		if err != nil {
			return err
		}
		m.Curve[li] = LoadPoint{
			Users: users, MeanMs: sum.Mean, SDMs: sum.SD, P5Ms: sum.P5, P95Ms: sum.P95,
		}
		return nil
	})
	if err != nil {
		return Measurement{}, err
	}
	m.SoloMs = m.Curve[0].MeanMs
	slaMs := float64(cfg.SLA) / float64(time.Millisecond)
	for _, p := range m.Curve {
		if p.MeanMs <= slaMs && p.Users > m.Capacity {
			m.Capacity = p.Users
		}
	}
	return m, nil
}

// Level is one acceleration group.
type Level struct {
	// Index is the group number; 0 is the slowest (the paper parks the
	// anomalous t2.micro there).
	Index int
	// Types are the member instance type names.
	Types []string
	// SoloMs is the group's representative solo response time.
	SoloMs float64
	// Capacity is the group's representative per-instance capacity K.
	Capacity int
}

// Grouping maps instance types to acceleration levels.
type Grouping struct {
	Levels []Level
	byType map[string]int
}

// LevelOf reports the acceleration level of an instance type.
func (g *Grouping) LevelOf(typeName string) (int, bool) {
	l, ok := g.byType[typeName]
	return l, ok
}

// NumLevels reports the number of acceleration levels.
func (g *Grouping) NumLevels() int { return len(g.Levels) }

// Classify clusters measurements into acceleration levels: sort by solo
// response time (descending = slowest first), then merge adjacent types
// whose solo times are within tol of each other (ratio ≤ 1+tol). The
// paper finds 3 levels among the general-purpose types (plus group 0 for
// the anomalous micro and level 4 for c4.8xlarge).
func Classify(measurements []Measurement, tol float64) (*Grouping, error) {
	if len(measurements) == 0 {
		return nil, errors.New("groups: nothing to classify")
	}
	if tol <= 0 {
		return nil, fmt.Errorf("groups: tolerance %v <= 0", tol)
	}
	ms := make([]Measurement, len(measurements))
	copy(ms, measurements)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].SoloMs != ms[j].SoloMs {
			return ms[i].SoloMs > ms[j].SoloMs // slowest first
		}
		return ms[i].Type < ms[j].Type
	})
	g := &Grouping{byType: make(map[string]int, len(ms))}
	for _, m := range ms {
		if m.SoloMs <= 0 {
			return nil, fmt.Errorf("groups: %s has solo time %v", m.Type, m.SoloMs)
		}
		n := len(g.Levels)
		if n > 0 {
			cur := &g.Levels[n-1]
			// cur.SoloMs >= m.SoloMs by the sort; merge when close.
			if cur.SoloMs/m.SoloMs <= 1+tol {
				cur.Types = append(cur.Types, m.Type)
				if m.Capacity > cur.Capacity {
					cur.Capacity = m.Capacity
				}
				g.byType[m.Type] = cur.Index
				continue
			}
		}
		g.Levels = append(g.Levels, Level{
			Index: n, Types: []string{m.Type}, SoloMs: m.SoloMs, Capacity: m.Capacity,
		})
		g.byType[m.Type] = n
	}
	return g, nil
}

// Manual builds a grouping from an explicit type→level assignment (the
// Fig 9 deployment pins groups 1, 2, 3 to t2.nano, t2.large, m4.4xlarge).
func Manual(assignment map[string]int, capacities map[string]int) (*Grouping, error) {
	if len(assignment) == 0 {
		return nil, errors.New("groups: empty assignment")
	}
	byLevel := make(map[int][]string)
	maxLevel := 0
	for typ, lvl := range assignment {
		if lvl < 0 {
			return nil, fmt.Errorf("groups: negative level %d for %s", lvl, typ)
		}
		byLevel[lvl] = append(byLevel[lvl], typ)
		if lvl > maxLevel {
			maxLevel = lvl
		}
	}
	g := &Grouping{byType: make(map[string]int, len(assignment))}
	for lvl := 0; lvl <= maxLevel; lvl++ {
		types := byLevel[lvl]
		sort.Strings(types)
		level := Level{Index: lvl, Types: types}
		for _, typ := range types {
			g.byType[typ] = lvl
			if c, ok := capacities[typ]; ok && c > level.Capacity {
				level.Capacity = c
			}
		}
		g.Levels = append(g.Levels, level)
	}
	return g, nil
}

// AccelerationFactor reports how much faster level b is than level a
// based on solo response times (Fig 5's 1.25×/1.73× ratios).
func (g *Grouping) AccelerationFactor(a, b int) (float64, error) {
	if a < 0 || a >= len(g.Levels) || b < 0 || b >= len(g.Levels) {
		return 0, fmt.Errorf("groups: levels %d/%d out of range [0,%d)", a, b, len(g.Levels))
	}
	sa, sb := g.Levels[a].SoloMs, g.Levels[b].SoloMs
	if sa <= 0 || sb <= 0 {
		return 0, errors.New("groups: grouping lacks solo measurements")
	}
	return sa / sb, nil
}

// Slope fits the per-user response-time growth of a measurement curve via
// least squares on (users, meanMs); the paper observes that "the slope of
// the mean response time becomes less steep as we use more powerful
// instances" (§VI-A2).
func Slope(m Measurement) float64 {
	n := float64(len(m.Curve))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range m.Curve {
		x, y := float64(p.Users), p.MeanMs
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
