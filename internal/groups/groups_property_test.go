package groups

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Classification must not depend on the order measurements are supplied.
func TestClassifyOrderInvariantProperty(t *testing.T) {
	base := []Measurement{
		{Type: "a", SoloMs: 15.0, Capacity: 20},
		{Type: "b", SoloMs: 8.3, Capacity: 60},
		{Type: "c", SoloMs: 8.3, Capacity: 60},
		{Type: "d", SoloMs: 6.6, Capacity: 90},
		{Type: "e", SoloMs: 4.8, Capacity: 400},
	}
	want, err := Classify(base, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shuffled := make([]Measurement, len(base))
		copy(shuffled, base)
		r.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got, err := Classify(shuffled, 0.12)
		if err != nil {
			return false
		}
		if got.NumLevels() != want.NumLevels() {
			return false
		}
		for _, m := range base {
			a, okA := want.LevelOf(m.Type)
			b, okB := got.LevelOf(m.Type)
			if !okA || !okB || a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: levels are ordered — every member of a higher level has a
// strictly smaller solo time than every member of a lower level.
func TestClassifyOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		ms := make([]Measurement, n)
		for i := range ms {
			ms[i] = Measurement{
				Type:   string(rune('a' + i)),
				SoloMs: 1 + r.Float64()*50,
			}
		}
		g, err := Classify(ms, 0.10)
		if err != nil {
			return false
		}
		for i := 1; i < len(g.Levels); i++ {
			// Levels ascend in acceleration: solo times descend.
			if g.Levels[i].SoloMs >= g.Levels[i-1].SoloMs {
				return false
			}
		}
		// Every type is assigned exactly once.
		seen := map[string]bool{}
		for _, l := range g.Levels {
			for _, typ := range l.Types {
				if seen[typ] {
					return false
				}
				seen[typ] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
