package tasks

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestParMatMulMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	// Generate a matmul state and run it through both implementations.
	st, err := MatMul{}.Generate(r, 24)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := MatMul{}.Execute(st)
	if err != nil {
		t.Fatal(err)
	}
	pst := st
	pst.Task = "parmatmul"
	parallel, err := ParMatMul{}.Execute(pst)
	if err != nil {
		t.Fatal(err)
	}
	var sr, pr matmulResult
	if err := json.Unmarshal(serial.Data, &sr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(parallel.Data, &pr); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sr.Trace-pr.Trace) > 1e-9*math.Abs(sr.Trace)+1e-9 {
		t.Fatalf("traces differ: %v vs %v", sr.Trace, pr.Trace)
	}
	if math.Abs(sr.Norm-pr.Norm) > 1e-9*sr.Norm+1e-9 {
		t.Fatalf("norms differ: %v vs %v", sr.Norm, pr.Norm)
	}
	if serial.Ops != parallel.Ops {
		t.Fatalf("op counts differ: %d vs %d", serial.Ops, parallel.Ops)
	}
}

func TestParMatMulParallelismDeclaration(t *testing.T) {
	p := ParMatMul{}
	if got := p.Parallelism(4); got != 1 {
		t.Fatalf("Parallelism(4) = %d, want 1", got)
	}
	if got := p.Parallelism(64); got != 8 {
		t.Fatalf("Parallelism(64) = %d, want 8", got)
	}
	if got := p.Parallelism(1000); got != 16 {
		t.Fatalf("Parallelism(1000) = %d, want cap 16", got)
	}
}

func TestParallelismOf(t *testing.T) {
	if got := ParallelismOf(MatMul{}, 64); got != 1 {
		t.Fatalf("serial task parallelism = %d, want 1", got)
	}
	if got := ParallelismOf(ParMatMul{}, 64); got != 8 {
		t.Fatalf("parallel task parallelism = %d, want 8", got)
	}
}

func TestExtendedPool(t *testing.T) {
	p := ExtendedPool()
	if p.Len() != 11 {
		t.Fatalf("extended pool has %d tasks, want 11", p.Len())
	}
	task, err := p.ByName("parmatmul")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	st, err := task.Generate(r, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute(st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != int64(16*16*16) {
		t.Fatalf("ops = %d, want %d", res.Ops, 16*16*16)
	}
}

func TestParMatMulValidation(t *testing.T) {
	data, _ := json.Marshal(matmulState{N: 3, A: []float64{1}, B: []float64{1}})
	if _, err := (ParMatMul{}).Execute(State{Task: "parmatmul", Data: data}); err == nil {
		t.Fatal("bad element counts should fail")
	}
	if _, err := (ParMatMul{}).Execute(State{Task: "matmul"}); err == nil {
		t.Fatal("wrong task routing should fail")
	}
}
