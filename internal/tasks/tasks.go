// Package tasks implements the simulator's pool of offloadable
// computations (§V: "a pool of common algorithms found in apps, e.g.,
// quicksort, bubblesort"). Each task follows the paper's homogeneous
// offloading model: the application state is serializable, can be shipped
// over the network, reconstructed remotely, and executed there — or
// executed locally when there is no connectivity.
//
// Every execution reports an operation count, which grounds the
// simulation's analytic cost model (Work) in the actual computations.
package tasks

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// State is the serializable application state of one offloadable method
// invocation (the "AS" of Fig 1a).
type State struct {
	Task string          `json:"task"`
	Size int             `json:"size"`
	Data json.RawMessage `json:"data"`
}

// Result is the serializable outcome of executing a State.
type Result struct {
	Task string          `json:"task"`
	Data json.RawMessage `json:"data"`
	// Ops counts the dominant primitive operations performed, used to
	// validate the analytic Work model.
	Ops int64 `json:"ops"`
}

// Task is one offloadable computation from the pool.
type Task interface {
	// Name is the unique registry key of the task.
	Name() string
	// Generate builds a random application state of the given size.
	Generate(r *rand.Rand, size int) (State, error)
	// Execute reconstructs the state and runs the computation.
	Execute(st State) (Result, error)
	// Work estimates the number of abstract work units a state of the
	// given size costs. The simulation divides Work by a server's
	// effective speed to obtain service times.
	Work(size int) float64
}

// ErrUnknownTask is returned when a state names a task that is not in the
// registry.
var ErrUnknownTask = errors.New("tasks: unknown task")

// Pool is an immutable, ordered registry of tasks (the APKs pushed into
// the surrogate).
type Pool struct {
	byName map[string]Task
	order  []string
}

// NewPool builds a pool from the given tasks. Duplicate names are
// rejected.
func NewPool(ts ...Task) (*Pool, error) {
	p := &Pool{byName: make(map[string]Task, len(ts))}
	for _, t := range ts {
		if t == nil {
			return nil, errors.New("tasks: nil task")
		}
		name := t.Name()
		if _, dup := p.byName[name]; dup {
			return nil, fmt.Errorf("tasks: duplicate task %q", name)
		}
		p.byName[name] = t
		p.order = append(p.order, name)
	}
	return p, nil
}

// DefaultPool returns the paper's 10-task pool.
func DefaultPool() *Pool {
	p, err := NewPool(
		Quicksort{}, Bubblesort{}, Mergesort{},
		Minimax{}, NQueens{},
		Fibonacci{}, MatMul{}, Knapsack{}, Sieve{}, FFT{},
	)
	if err != nil {
		// The default pool is a fixed literal; a failure here is a
		// programming error, acceptable to surface at startup.
		panic(err)
	}
	return p
}

// Names returns the registered task names in registration order.
func (p *Pool) Names() []string {
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}

// Len reports the number of registered tasks.
func (p *Pool) Len() int { return len(p.order) }

// ByName fetches a task by registry key.
func (p *Pool) ByName(name string) (Task, error) {
	t, ok := p.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTask, name)
	}
	return t, nil
}

// Random picks a task uniformly at random, mirroring the simulator's
// concurrent mode which draws each request's task from the pool.
func (p *Pool) Random(r *rand.Rand) Task {
	return p.byName[p.order[r.Intn(len(p.order))]]
}

// Execute routes a state to its task and runs it.
func (p *Pool) Execute(st State) (Result, error) {
	t, err := p.ByName(st.Task)
	if err != nil {
		return Result{}, err
	}
	return t.Execute(st)
}

// Work routes a (task, size) pair to the task's analytic cost model.
func (p *Pool) Work(name string, size int) (float64, error) {
	t, err := p.ByName(name)
	if err != nil {
		return 0, err
	}
	return t.Work(size), nil
}

// --- shared helpers -------------------------------------------------------

func marshalState(task string, size int, data any) (State, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return State{}, fmt.Errorf("tasks: marshal %s state: %w", task, err)
	}
	return State{Task: task, Size: size, Data: raw}, nil
}

func unmarshalState(st State, task string, into any) error {
	if st.Task != task {
		return fmt.Errorf("tasks: state for %q routed to %q", st.Task, task)
	}
	if err := json.Unmarshal(st.Data, into); err != nil {
		return fmt.Errorf("tasks: unmarshal %s state: %w", task, err)
	}
	return nil
}

func marshalResult(task string, ops int64, data any) (Result, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return Result{}, fmt.Errorf("tasks: marshal %s result: %w", task, err)
	}
	return Result{Task: task, Data: raw, Ops: ops}, nil
}

func randomInts(r *rand.Rand, n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = r.Intn(1 << 20)
	}
	return xs
}

func isSorted(xs []int) bool { return sort.IntsAreSorted(xs) }

func nLogN(n int) float64 {
	if n <= 1 {
		return 1
	}
	return float64(n) * math.Log2(float64(n))
}
