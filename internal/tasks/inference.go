package tasks

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Inference is the mobile-ML offloading task family ("Combining Cloud
// and Mobile Computing for Machine Learning", PAPERS.md): a dense
// feed-forward network evaluated on a batch of inputs. It differs from
// the classic pool in three serving-relevant ways:
//
//   - The model weights are NOT part of the shipped state. The
//     surrogate derives them deterministically from the model name and
//     keeps them resident, exactly like a serving backend that loads a
//     model once and answers many requests — only the input batch
//     travels (the TF-Mobile sizing notes in SNIPPETS.md put weights at
//     MBs vs KBs of input).
//   - Model load is paid once per session: a request whose state sets
//     Load re-initializes the weights and bills the load ops; follow-up
//     requests in the same session bill only the forward pass. The
//     workload layer marks session starts (workload.Request.SessionStart)
//     so replay can amortize load cost across a session.
//   - The compute is homogeneous and batchable: every request for the
//     same model runs the identical dense kernel, so the serve layer's
//     dynamic batcher can coalesce them into one ExecuteBatch.
//
// Size is the batch size (inputs per request).
type Inference struct {
	Model InferenceModel
}

var _ Task = Inference{}

// InferenceModel describes one deployable model: a stack of Layers
// dense Hidden×Hidden layers behind an In×Hidden input projection.
type InferenceModel struct {
	// Model is the catalog name; the task registers as "infer-<Model>".
	Model string
	// In is the input feature dimension.
	In int
	// Hidden is the width of each dense layer.
	Hidden int
	// Layers is the number of Hidden×Hidden dense layers.
	Layers int
	// LoadFactor scales the one-time model-load cost in units of
	// per-parameter work (touching every weight once ≈ reading the
	// model from storage and building the graph).
	LoadFactor float64
}

// DefaultModels is the scaled-down mobile-ML catalog: a small
// vision-style net, a deeper one, and a wide recurrent-style one.
func DefaultModels() []InferenceModel {
	return []InferenceModel{
		{Model: "mobilenet", In: 16, Hidden: 32, Layers: 4, LoadFactor: 8},
		{Model: "inception", In: 24, Hidden: 48, Layers: 8, LoadFactor: 8},
		{Model: "lstm", In: 32, Hidden: 64, Layers: 2, LoadFactor: 8},
	}
}

// InferenceTasks returns the task family for the default model catalog.
func InferenceTasks() []Task {
	models := DefaultModels()
	out := make([]Task, len(models))
	for i, m := range models {
		out[i] = Inference{Model: m}
	}
	return out
}

// InferencePool returns the classic 10-task pool extended with the
// inference family. DefaultPool stays untouched: appending tasks to it
// would shift every Pool.Random draw and invalidate pinned schedule
// digests, so inference workloads opt in via this pool (or their own).
func InferencePool() *Pool {
	p, err := NewPool(append([]Task{
		Quicksort{}, Bubblesort{}, Mergesort{},
		Minimax{}, NQueens{},
		Fibonacci{}, MatMul{}, Knapsack{}, Sieve{}, FFT{},
	}, InferenceTasks()...)...)
	if err != nil {
		panic(err)
	}
	return p
}

type inferenceState struct {
	Model string    `json:"model"`
	Batch int       `json:"batch"`
	In    []float64 `json:"in"` // batch × In features, row-major
	// Load marks the first request of a session: the surrogate
	// (re-)initializes the model and bills the load ops.
	Load bool `json:"load,omitempty"`
}

type inferenceResult struct {
	// Scores holds one output activation per batch item.
	Scores []float64 `json:"scores"`
	// Loaded reports the parameter count initialized by this request
	// (0 when the model was already resident for the session).
	Loaded int64 `json:"loaded,omitempty"`
}

// Name implements Task.
func (t Inference) Name() string { return "infer-" + t.Model.Model }

// Params counts the model's weights.
func (t Inference) Params() int64 {
	m := t.Model
	return int64(m.In)*int64(m.Hidden) + int64(m.Layers)*int64(m.Hidden)*int64(m.Hidden)
}

// MemoryBytes is the resident footprint of the loaded model (float64
// weights), the quantity a placement layer budgets against.
func (t Inference) MemoryBytes() int64 { return t.Params() * 8 }

// Generate implements Task. Size is the batch size (clamped ≥ 1); the
// generated state marks a session start, since a standalone state has
// no preceding request to have loaded the model.
func (t Inference) Generate(r *rand.Rand, size int) (State, error) {
	batch := size
	if batch < 1 {
		batch = 1
	}
	in := make([]float64, batch*t.Model.In)
	for i := range in {
		in[i] = r.Float64()*2 - 1
	}
	return marshalState(t.Name(), size, inferenceState{
		Model: t.Model.Model,
		Batch: batch,
		In:    in,
		Load:  true,
	})
}

// modelCache holds derived weights per model so steady-state requests
// skip re-derivation — the in-process analogue of a loaded model. The
// cache only affects wall time; billed ops depend solely on the state.
var modelCache sync.Map // model name → []float64

// weights returns the model's deterministic pseudo-weights, deriving
// and caching them on first use (or re-deriving when load is set, the
// session-start path that bills the load).
func (t Inference) weights(load bool) []float64 {
	if !load {
		if w, ok := modelCache.Load(t.Model.Model); ok {
			return w.([]float64)
		}
	}
	n := t.Params()
	w := make([]float64, n)
	// splitmix64 seeded by the model name: the same model always
	// loads the same weights on every surrogate, without shipping
	// them. Inlined to keep the package dependency-free.
	var seed uint64 = 14695981039346656037
	for _, c := range []byte(t.Model.Model) {
		seed ^= uint64(c)
		seed *= 1099511628211
	}
	for i := range w {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		// Scale to ±1/√Hidden so activations stay bounded through
		// deep stacks.
		w[i] = (float64(z>>11)/float64(1<<53)*2 - 1) / math.Sqrt(float64(t.Model.Hidden))
	}
	modelCache.Store(t.Model.Model, w)
	return w
}

// Execute implements Task: a ReLU MLP forward pass over the batch.
func (t Inference) Execute(st State) (Result, error) {
	var in inferenceState
	if err := unmarshalState(st, t.Name(), &in); err != nil {
		return Result{}, err
	}
	m := t.Model
	if in.Model != m.Model {
		return Result{}, fmt.Errorf("tasks: inference state for model %q routed to %q", in.Model, m.Model)
	}
	if in.Batch < 1 || len(in.In) != in.Batch*m.In {
		return Result{}, fmt.Errorf("tasks: inference batch=%d with %d features (want %d)", in.Batch, len(in.In), in.Batch*m.In)
	}
	w := t.weights(in.Load)
	var ops int64
	if in.Load {
		ops += int64(float64(t.Params()) * m.LoadFactor)
	}
	scores := make([]float64, in.Batch)
	act := make([]float64, m.Hidden)
	next := make([]float64, m.Hidden)
	for b := 0; b < in.Batch; b++ {
		x := in.In[b*m.In : (b+1)*m.In]
		// Input projection In → Hidden.
		proj := w[:m.In*m.Hidden]
		for j := 0; j < m.Hidden; j++ {
			s := 0.0
			for i := 0; i < m.In; i++ {
				s += x[i] * proj[i*m.Hidden+j]
			}
			if s < 0 {
				s = 0
			}
			act[j] = s
		}
		ops += int64(m.In) * int64(m.Hidden)
		// Dense stack Hidden → Hidden.
		for l := 0; l < m.Layers; l++ {
			lw := w[m.In*m.Hidden+l*m.Hidden*m.Hidden:]
			for j := 0; j < m.Hidden; j++ {
				s := 0.0
				for i := 0; i < m.Hidden; i++ {
					s += act[i] * lw[i*m.Hidden+j]
				}
				if s < 0 {
					s = 0
				}
				next[j] = s
			}
			act, next = next, act
			ops += int64(m.Hidden) * int64(m.Hidden)
		}
		out := 0.0
		for _, v := range act {
			out += v
		}
		scores[b] = out
	}
	res := inferenceResult{Scores: scores}
	if in.Load {
		res.Loaded = t.Params()
	}
	return marshalResult(t.Name(), ops, res)
}

// Work implements Task: the steady-state per-request cost — batch ×
// one forward pass, in Hidden-wide column units so the per-request
// cost lands in the same 500–6000 band as the classic pool (Execute's
// measured ops stay a constant Hidden× above it). Session model-load
// cost is additional and surfaced via LoadWork, so schedulers can
// amortize it explicitly.
func (t Inference) Work(size int) float64 {
	batch := size
	if batch < 1 {
		batch = 1
	}
	m := t.Model
	macs := float64(m.In)*float64(m.Hidden) + float64(m.Layers)*float64(m.Hidden)*float64(m.Hidden)
	return float64(batch) * macs / float64(m.Hidden)
}

// LoadWork is the one-time session cost of loading the model, in the
// same work units as Work.
func (t Inference) LoadWork() float64 {
	return float64(t.Params()) * t.Model.LoadFactor / float64(t.Model.Hidden)
}

// MarkSessionStart flips the Load flag on an inference state —
// the replay layer calls it for requests that begin a session so the
// first request pays the model load and the rest of the session
// doesn't.
func MarkSessionStart(st *State) error {
	var in inferenceState
	if err := unmarshalState(*st, st.Task, &in); err != nil {
		return err
	}
	in.Load = true
	marked, err := marshalState(st.Task, st.Size, in)
	if err != nil {
		return err
	}
	*st = marked
	return nil
}

// ClearSessionStart clears the Load flag (steady-state request inside
// a session).
func ClearSessionStart(st *State) error {
	var in inferenceState
	if err := unmarshalState(*st, st.Task, &in); err != nil {
		return err
	}
	in.Load = false
	cleared, err := marshalState(st.Task, st.Size, in)
	if err != nil {
		return err
	}
	*st = cleared
	return nil
}
