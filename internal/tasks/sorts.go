package tasks

import (
	"fmt"
	"math/rand"
)

// sortState is the serialized application state shared by the sorting
// tasks.
type sortState struct {
	Values []int `json:"values"`
}

// sortResult reports a verification digest instead of echoing the sorted
// slice, keeping responses small the way an offloading system would.
type sortResult struct {
	Sorted   bool  `json:"sorted"`
	Checksum int64 `json:"checksum"`
	First    int   `json:"first"`
	Last     int   `json:"last"`
}

func checksumInts(xs []int) int64 {
	var sum int64
	for i, x := range xs {
		sum += int64(x) * int64(i+1)
	}
	return sum
}

func finishSort(task string, xs []int, ops int64) (Result, error) {
	if !isSorted(xs) {
		return Result{}, fmt.Errorf("tasks: %s produced unsorted output", task)
	}
	res := sortResult{Sorted: true, Checksum: checksumInts(xs)}
	if len(xs) > 0 {
		res.First, res.Last = xs[0], xs[len(xs)-1]
	}
	return marshalResult(task, ops, res)
}

// Quicksort sorts random integers with an in-place randomized-pivot
// quicksort. Work ≈ n·log2 n.
type Quicksort struct{}

var _ Task = Quicksort{}

// Name implements Task.
func (Quicksort) Name() string { return "quicksort" }

// Generate implements Task.
func (Quicksort) Generate(r *rand.Rand, size int) (State, error) {
	if size < 0 {
		return State{}, fmt.Errorf("tasks: quicksort size %d < 0", size)
	}
	return marshalState("quicksort", size, sortState{Values: randomInts(r, size)})
}

// Execute implements Task.
func (Quicksort) Execute(st State) (Result, error) {
	var in sortState
	if err := unmarshalState(st, "quicksort", &in); err != nil {
		return Result{}, err
	}
	xs := in.Values
	var ops int64
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 1 {
			// Median-of-three pivot keeps the deterministic
			// implementation near n log n on adversarial inputs.
			mid := lo + (hi-lo)/2
			if xs[mid] < xs[lo] {
				xs[mid], xs[lo] = xs[lo], xs[mid]
			}
			if xs[hi-1] < xs[lo] {
				xs[hi-1], xs[lo] = xs[lo], xs[hi-1]
			}
			if xs[hi-1] < xs[mid] {
				xs[hi-1], xs[mid] = xs[mid], xs[hi-1]
			}
			pivot := xs[mid]
			i, j := lo, hi-1
			for i <= j {
				for xs[i] < pivot {
					i++
					ops++
				}
				for xs[j] > pivot {
					j--
					ops++
				}
				ops++
				if i <= j {
					xs[i], xs[j] = xs[j], xs[i]
					i++
					j--
				}
			}
			// Recurse into the smaller side to bound stack depth.
			if j-lo < hi-i {
				qs(lo, j+1)
				lo = i
			} else {
				qs(i, hi)
				hi = j + 1
			}
		}
	}
	qs(0, len(xs))
	return finishSort("quicksort", xs, ops)
}

// Work implements Task.
func (Quicksort) Work(size int) float64 { return 2 * nLogN(size) }

// Bubblesort is the deliberately expensive O(n^2) member of the pool: the
// paper uses it to create heavy compute per request.
type Bubblesort struct{}

var _ Task = Bubblesort{}

// Name implements Task.
func (Bubblesort) Name() string { return "bubblesort" }

// Generate implements Task.
func (Bubblesort) Generate(r *rand.Rand, size int) (State, error) {
	if size < 0 {
		return State{}, fmt.Errorf("tasks: bubblesort size %d < 0", size)
	}
	return marshalState("bubblesort", size, sortState{Values: randomInts(r, size)})
}

// Execute implements Task.
func (Bubblesort) Execute(st State) (Result, error) {
	var in sortState
	if err := unmarshalState(st, "bubblesort", &in); err != nil {
		return Result{}, err
	}
	xs := in.Values
	var ops int64
	for n := len(xs); n > 1; {
		newN := 0
		for i := 1; i < n; i++ {
			ops++
			if xs[i-1] > xs[i] {
				xs[i-1], xs[i] = xs[i], xs[i-1]
				newN = i
			}
		}
		n = newN
	}
	return finishSort("bubblesort", xs, ops)
}

// Work implements Task.
func (Bubblesort) Work(size int) float64 { return 0.5 * float64(size) * float64(size) }

// Mergesort is the stable O(n log n) comparison sort of the pool.
type Mergesort struct{}

var _ Task = Mergesort{}

// Name implements Task.
func (Mergesort) Name() string { return "mergesort" }

// Generate implements Task.
func (Mergesort) Generate(r *rand.Rand, size int) (State, error) {
	if size < 0 {
		return State{}, fmt.Errorf("tasks: mergesort size %d < 0", size)
	}
	return marshalState("mergesort", size, sortState{Values: randomInts(r, size)})
}

// Execute implements Task.
func (Mergesort) Execute(st State) (Result, error) {
	var in sortState
	if err := unmarshalState(st, "mergesort", &in); err != nil {
		return Result{}, err
	}
	xs := in.Values
	buf := make([]int, len(xs))
	var ops int64
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo <= 1 {
			return
		}
		mid := lo + (hi-lo)/2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			ops++
			if xs[i] <= xs[j] {
				buf[k] = xs[i]
				i++
			} else {
				buf[k] = xs[j]
				j++
			}
			k++
		}
		for i < mid {
			buf[k] = xs[i]
			i++
			k++
		}
		for j < hi {
			buf[k] = xs[j]
			j++
			k++
		}
		copy(xs[lo:hi], buf[lo:hi])
	}
	ms(0, len(xs))
	return finishSort("mergesort", xs, ops)
}

// Work implements Task.
func (Mergesort) Work(size int) float64 { return nLogN(size) }
