package tasks

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Fibonacci computes F(n) mod 2^64 with the fast-doubling method. It is
// the lightest task in the pool (Work ≈ log n big-step iterations scaled
// to stay comparable with the rest of the pool).
type Fibonacci struct{}

var _ Task = Fibonacci{}

type fibState struct {
	N int `json:"n"`
}

type fibResult struct {
	ValueMod64 uint64 `json:"valueMod64"`
}

// Name implements Task.
func (Fibonacci) Name() string { return "fibonacci" }

// Generate implements Task. Size maps directly to n (clamped ≥ 0).
func (Fibonacci) Generate(_ *rand.Rand, size int) (State, error) {
	n := size
	if n < 0 {
		n = 0
	}
	return marshalState("fibonacci", size, fibState{N: n})
}

// Execute implements Task.
func (Fibonacci) Execute(st State) (Result, error) {
	var in fibState
	if err := unmarshalState(st, "fibonacci", &in); err != nil {
		return Result{}, err
	}
	if in.N < 0 {
		return Result{}, fmt.Errorf("tasks: fibonacci n=%d < 0", in.N)
	}
	var ops int64
	var fib func(n uint64) (uint64, uint64)
	fib = func(n uint64) (uint64, uint64) {
		ops++
		if n == 0 {
			return 0, 1
		}
		a, b := fib(n / 2)
		c := a * (2*b - a)
		d := a*a + b*b
		if n%2 == 0 {
			return c, d
		}
		return d, c + d
	}
	v, _ := fib(uint64(in.N))
	return marshalResult("fibonacci", ops, fibResult{ValueMod64: v})
}

// Work implements Task.
func (Fibonacci) Work(size int) float64 {
	if size < 2 {
		return 1
	}
	return math.Log2(float64(size)) + 1
}

// MatMul multiplies two dense n×n float64 matrices. Work ≈ n³.
type MatMul struct{}

var _ Task = MatMul{}

type matmulState struct {
	N int       `json:"n"`
	A []float64 `json:"a"`
	B []float64 `json:"b"`
}

type matmulResult struct {
	Trace float64 `json:"trace"`
	Norm  float64 `json:"norm"`
}

// Name implements Task.
func (MatMul) Name() string { return "matmul" }

// Generate implements Task. Size is the matrix dimension (clamped ≥ 1).
func (MatMul) Generate(r *rand.Rand, size int) (State, error) {
	n := size
	if n < 1 {
		n = 1
	}
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = r.Float64()*2 - 1
		b[i] = r.Float64()*2 - 1
	}
	return marshalState("matmul", size, matmulState{N: n, A: a, B: b})
}

// Execute implements Task.
func (MatMul) Execute(st State) (Result, error) {
	var in matmulState
	if err := unmarshalState(st, "matmul", &in); err != nil {
		return Result{}, err
	}
	n := in.N
	if n < 1 || len(in.A) != n*n || len(in.B) != n*n {
		return Result{}, fmt.Errorf("tasks: matmul n=%d with %d/%d elements", n, len(in.A), len(in.B))
	}
	c := make([]float64, n*n)
	var ops int64
	for i := 0; i < n; i++ {
		for kk := 0; kk < n; kk++ {
			aik := in.A[i*n+kk]
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * in.B[kk*n+j]
				ops++
			}
		}
	}
	var trace, norm float64
	for i := 0; i < n; i++ {
		trace += c[i*n+i]
	}
	for _, v := range c {
		norm += v * v
	}
	return marshalResult("matmul", ops, matmulResult{Trace: trace, Norm: math.Sqrt(norm)})
}

// Work implements Task.
func (MatMul) Work(size int) float64 {
	n := size
	if n < 1 {
		n = 1
	}
	return float64(n) * float64(n) * float64(n)
}

// Knapsack solves 0/1 knapsack by dynamic programming over items ×
// capacity. Work ≈ n·W.
type Knapsack struct{}

var _ Task = Knapsack{}

type knapsackState struct {
	Capacity int   `json:"capacity"`
	Weights  []int `json:"weights"`
	Values   []int `json:"values"`
}

type knapsackResult struct {
	Best int `json:"best"`
}

// Name implements Task.
func (Knapsack) Name() string { return "knapsack" }

// Generate implements Task. Size is the item count; capacity scales as
// 10× the item count so Work grows quadratically with size.
func (Knapsack) Generate(r *rand.Rand, size int) (State, error) {
	n := size
	if n < 1 {
		n = 1
	}
	ws := make([]int, n)
	vs := make([]int, n)
	for i := range ws {
		ws[i] = 1 + r.Intn(20)
		vs[i] = 1 + r.Intn(100)
	}
	return marshalState("knapsack", size, knapsackState{
		Capacity: 10 * n, Weights: ws, Values: vs,
	})
}

// Execute implements Task.
func (Knapsack) Execute(st State) (Result, error) {
	var in knapsackState
	if err := unmarshalState(st, "knapsack", &in); err != nil {
		return Result{}, err
	}
	if len(in.Weights) != len(in.Values) {
		return Result{}, fmt.Errorf("tasks: knapsack %d weights vs %d values", len(in.Weights), len(in.Values))
	}
	if in.Capacity < 0 {
		return Result{}, fmt.Errorf("tasks: knapsack capacity %d < 0", in.Capacity)
	}
	dp := make([]int, in.Capacity+1)
	var ops int64
	for i, w := range in.Weights {
		v := in.Values[i]
		if w < 0 {
			return Result{}, fmt.Errorf("tasks: knapsack weight %d < 0", w)
		}
		for c := in.Capacity; c >= w; c-- {
			ops++
			if cand := dp[c-w] + v; cand > dp[c] {
				dp[c] = cand
			}
		}
	}
	return marshalResult("knapsack", ops, knapsackResult{Best: dp[in.Capacity]})
}

// Work implements Task.
func (Knapsack) Work(size int) float64 {
	n := size
	if n < 1 {
		n = 1
	}
	return float64(n) * float64(10*n)
}

// Sieve counts primes below the limit with the sieve of Eratosthenes.
type Sieve struct{}

var _ Task = Sieve{}

type sieveState struct {
	Limit int `json:"limit"`
}

type sieveResult struct {
	Primes int `json:"primes"`
}

// Name implements Task.
func (Sieve) Name() string { return "sieve" }

// Generate implements Task. Size scales the sieve limit by 1000 so the
// pool's size knob produces comparable service demands across tasks.
func (Sieve) Generate(_ *rand.Rand, size int) (State, error) {
	n := size
	if n < 1 {
		n = 1
	}
	return marshalState("sieve", size, sieveState{Limit: 1000 * n})
}

// Execute implements Task.
func (Sieve) Execute(st State) (Result, error) {
	var in sieveState
	if err := unmarshalState(st, "sieve", &in); err != nil {
		return Result{}, err
	}
	if in.Limit < 0 {
		return Result{}, fmt.Errorf("tasks: sieve limit %d < 0", in.Limit)
	}
	if in.Limit < 2 {
		return marshalResult("sieve", 1, sieveResult{Primes: 0})
	}
	composite := make([]bool, in.Limit)
	var ops int64
	for p := 2; p*p < in.Limit; p++ {
		if composite[p] {
			continue
		}
		for q := p * p; q < in.Limit; q += p {
			composite[q] = true
			ops++
		}
	}
	count := 0
	for p := 2; p < in.Limit; p++ {
		if !composite[p] {
			count++
		}
	}
	return marshalResult("sieve", ops, sieveResult{Primes: count})
}

// Work implements Task.
func (Sieve) Work(size int) float64 {
	n := 1000 * size
	if n < 2 {
		return 1
	}
	return float64(n) * math.Log(math.Log(float64(n))+1)
}

// FFT runs an in-place radix-2 Cooley–Tukey transform over random complex
// samples. Work ≈ n·log2 n with n rounded up to a power of two.
type FFT struct{}

var _ Task = FFT{}

type fftState struct {
	Re []float64 `json:"re"`
	Im []float64 `json:"im"`
}

type fftResult struct {
	Energy float64 `json:"energy"`
	PeakDC float64 `json:"peakDC"`
}

// Name implements Task.
func (FFT) Name() string { return "fft" }

// Generate implements Task. Size is rounded up to the next power of two
// (minimum 8 samples).
func (FFT) Generate(r *rand.Rand, size int) (State, error) {
	n := nextPow2(size)
	if n < 8 {
		n = 8
	}
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = r.NormFloat64()
	}
	return marshalState("fft", size, fftState{Re: re, Im: im})
}

// Execute implements Task.
func (FFT) Execute(st State) (Result, error) {
	var in fftState
	if err := unmarshalState(st, "fft", &in); err != nil {
		return Result{}, err
	}
	n := len(in.Re)
	if n == 0 || n&(n-1) != 0 || len(in.Im) != n {
		return Result{}, fmt.Errorf("tasks: fft needs power-of-two matched re/im, got %d/%d", n, len(in.Im))
	}
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = complex(in.Re[i], in.Im[i])
	}
	var ops int64
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			xs[i], xs[j] = xs[j], xs[i]
		}
		m := n >> 1
		for m >= 1 && j&m != 0 {
			j ^= m
			m >>= 1
		}
		j |= m
	}
	for span := 2; span <= n; span <<= 1 {
		w := cmplx.Exp(complex(0, -2*math.Pi/float64(span)))
		for start := 0; start < n; start += span {
			wk := complex(1, 0)
			for o := 0; o < span/2; o++ {
				a := xs[start+o]
				b := xs[start+o+span/2] * wk
				xs[start+o] = a + b
				xs[start+o+span/2] = a - b
				wk *= w
				ops++
			}
		}
	}
	var energy float64
	for _, x := range xs {
		energy += real(x)*real(x) + imag(x)*imag(x)
	}
	return marshalResult("fft", ops, fftResult{Energy: energy, PeakDC: cmplx.Abs(xs[0])})
}

// Work implements Task.
func (FFT) Work(size int) float64 {
	n := nextPow2(size)
	if n < 8 {
		n = 8
	}
	return nLogN(n) / 2
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
