package tasks

import (
	"encoding/json"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDefaultPoolHasTenTasks(t *testing.T) {
	p := DefaultPool()
	if p.Len() != 10 {
		t.Fatalf("pool size = %d, want 10 (the paper's pool)", p.Len())
	}
	want := []string{
		"quicksort", "bubblesort", "mergesort", "minimax", "nqueens",
		"fibonacci", "matmul", "knapsack", "sieve", "fft",
	}
	names := p.Names()
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestNewPoolRejectsDuplicatesAndNil(t *testing.T) {
	if _, err := NewPool(Quicksort{}, Quicksort{}); err == nil {
		t.Fatal("duplicate task names should fail")
	}
	if _, err := NewPool(nil); err == nil {
		t.Fatal("nil task should fail")
	}
}

func TestPoolByNameUnknown(t *testing.T) {
	p := DefaultPool()
	if _, err := p.ByName("does-not-exist"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("err = %v, want ErrUnknownTask", err)
	}
	if _, err := p.Execute(State{Task: "nope"}); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("Execute err = %v, want ErrUnknownTask", err)
	}
	if _, err := p.Work("nope", 5); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("Work err = %v, want ErrUnknownTask", err)
	}
}

func TestPoolRandomCoversAllTasks(t *testing.T) {
	p := DefaultPool()
	r := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		seen[p.Random(r).Name()] = true
	}
	if len(seen) != p.Len() {
		t.Fatalf("Random covered %d/%d tasks", len(seen), p.Len())
	}
}

// Generate→serialize→deserialize→Execute for every task in the pool: this
// is the homogeneous offloading round trip of Fig 1a.
func TestRoundTripAllTasks(t *testing.T) {
	p := DefaultPool()
	r := rand.New(rand.NewSource(42))
	for _, name := range p.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			task, err := p.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			st, err := task.Generate(r, 24)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if st.Task != name {
				t.Fatalf("state task = %q, want %q", st.Task, name)
			}
			// Wire round trip.
			wire, err := json.Marshal(st)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back State
			if err := json.Unmarshal(wire, &back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			res, err := p.Execute(back)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if res.Task != name {
				t.Fatalf("result task = %q, want %q", res.Task, name)
			}
			if res.Ops <= 0 {
				t.Fatalf("Ops = %d, want > 0", res.Ops)
			}
			if task.Work(24) <= 0 {
				t.Fatal("Work must be positive")
			}
		})
	}
}

// Executing the same state twice yields identical results (tasks must be
// deterministic given their state).
func TestExecutionDeterminism(t *testing.T) {
	p := DefaultPool()
	r := rand.New(rand.NewSource(7))
	for _, name := range p.Names() {
		task, _ := p.ByName(name)
		st, err := task.Generate(r, 16)
		if err != nil {
			t.Fatalf("%s Generate: %v", name, err)
		}
		a, err := task.Execute(st)
		if err != nil {
			t.Fatalf("%s Execute: %v", name, err)
		}
		b, err := task.Execute(st)
		if err != nil {
			t.Fatalf("%s re-Execute: %v", name, err)
		}
		if string(a.Data) != string(b.Data) || a.Ops != b.Ops {
			t.Fatalf("%s not deterministic: %s/%d vs %s/%d", name, a.Data, a.Ops, b.Data, b.Ops)
		}
	}
}

func TestWrongTaskRouting(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	st, err := Quicksort{}.Generate(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Bubblesort{}).Execute(st); err == nil {
		t.Fatal("executing quicksort state on bubblesort should fail")
	}
}

func TestSortsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	values := randomInts(r, 200)
	var results []sortResult
	for _, task := range []Task{Quicksort{}, Bubblesort{}, Mergesort{}} {
		data, err := json.Marshal(sortState{Values: append([]int(nil), values...)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := task.Execute(State{Task: task.Name(), Size: len(values), Data: data})
		if err != nil {
			t.Fatalf("%s: %v", task.Name(), err)
		}
		var sr sortResult
		if err := json.Unmarshal(res.Data, &sr); err != nil {
			t.Fatal(err)
		}
		if !sr.Sorted {
			t.Fatalf("%s reported unsorted output", task.Name())
		}
		results = append(results, sr)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Checksum != results[0].Checksum ||
			results[i].First != results[0].First || results[i].Last != results[0].Last {
			t.Fatalf("sorts disagree: %+v", results)
		}
	}
	// Cross-check the digest against the stdlib sort.
	want := append([]int(nil), values...)
	sort.Ints(want)
	if results[0].First != want[0] || results[0].Last != want[len(want)-1] {
		t.Fatalf("digest first/last = %d/%d, want %d/%d",
			results[0].First, results[0].Last, want[0], want[len(want)-1])
	}
	if results[0].Checksum != checksumInts(want) {
		t.Fatal("checksum does not match stdlib sort")
	}
}

// Property: sorting any random slice round-trips through state marshaling
// and reports sorted=true with matching stdlib checksum.
func TestQuicksortProperty(t *testing.T) {
	f := func(raw []int16) bool {
		values := make([]int, len(raw))
		for i, v := range raw {
			values[i] = int(v)
		}
		data, err := json.Marshal(sortState{Values: values})
		if err != nil {
			return false
		}
		res, err := Quicksort{}.Execute(State{Task: "quicksort", Size: len(values), Data: data})
		if err != nil {
			return false
		}
		var sr sortResult
		if err := json.Unmarshal(res.Data, &sr); err != nil {
			return false
		}
		want := append([]int(nil), values...)
		sort.Ints(want)
		return sr.Sorted && sr.Checksum == checksumInts(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNQueensKnownCounts(t *testing.T) {
	for n, want := range nqueensSolutions {
		if n > 10 {
			continue // keep the unit test fast; 11/12 covered by Work tests
		}
		data, err := json.Marshal(nqueensState{N: n})
		if err != nil {
			t.Fatal(err)
		}
		res, err := NQueens{}.Execute(State{Task: "nqueens", Size: n, Data: data})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var nr nqueensResult
		if err := json.Unmarshal(res.Data, &nr); err != nil {
			t.Fatal(err)
		}
		if nr.Solutions != want {
			t.Fatalf("nqueens(%d) = %d, want %d", n, nr.Solutions, want)
		}
	}
}

func TestNQueensValidation(t *testing.T) {
	data, _ := json.Marshal(nqueensState{N: 20})
	if _, err := (NQueens{}).Execute(State{Task: "nqueens", Data: data}); err == nil {
		t.Fatal("n=20 should be rejected")
	}
}

func TestMinimaxSolvesTicTacToe(t *testing.T) {
	// X (player 1) to move, can win immediately at cell 2.
	// Board: X X .
	//        O O .
	//        . . .
	board := []int{1, 1, 0, 2, 2, 0, 0, 0, 0}
	data, err := json.Marshal(minimaxState{Board: board, M: 3, K: 3, Turn: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Minimax{}.Execute(State{Task: "minimax", Size: 5, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	var mr minimaxResult
	if err := json.Unmarshal(res.Data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.BestMove != 2 || mr.Score != 1 {
		t.Fatalf("minimax best=%d score=%d, want best=2 score=1", mr.BestMove, mr.Score)
	}
}

func TestMinimaxEmptyBoardIsDraw(t *testing.T) {
	data, err := json.Marshal(minimaxState{Board: make([]int, 9), M: 3, K: 3, Turn: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Minimax{}.Execute(State{Task: "minimax", Size: 9, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	var mr minimaxResult
	if err := json.Unmarshal(res.Data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Score != 0 {
		t.Fatalf("perfect tic-tac-toe is a draw, got score %d", mr.Score)
	}
}

func TestMinimaxValidation(t *testing.T) {
	data, _ := json.Marshal(minimaxState{Board: []int{0}, M: 3, K: 3, Turn: 1})
	if _, err := (Minimax{}).Execute(State{Task: "minimax", Data: data}); err == nil {
		t.Fatal("bad board length should be rejected")
	}
	data, _ = json.Marshal(minimaxState{Board: make([]int, 9), M: 3, K: 3, Turn: 7})
	if _, err := (Minimax{}).Execute(State{Task: "minimax", Data: data}); err == nil {
		t.Fatal("bad turn should be rejected")
	}
}

func TestMinimaxGenerateLegalPositions(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for size := 2; size <= 12; size++ {
		st, err := Minimax{}.Generate(r, size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		var ms minimaxState
		if err := json.Unmarshal(st.Data, &ms); err != nil {
			t.Fatal(err)
		}
		xs, os, empty := 0, 0, 0
		for _, c := range ms.Board {
			switch c {
			case 0:
				empty++
			case 1:
				xs++
			case 2:
				os++
			}
		}
		if empty < 2 {
			t.Fatalf("size %d: %d empties, want >= 2", size, empty)
		}
		if d := xs - os; d < -1 || d > 1 {
			t.Fatalf("size %d: illegal X/O balance %d/%d", size, xs, os)
		}
		if _, err := (Minimax{}).Execute(st); err != nil {
			t.Fatalf("size %d execute: %v", size, err)
		}
	}
}

func TestFibonacciKnownValues(t *testing.T) {
	want := map[int]uint64{0: 0, 1: 1, 2: 1, 10: 55, 50: 12586269025, 90: 2880067194370816120}
	for n, v := range want {
		data, err := json.Marshal(fibState{N: n})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Fibonacci{}.Execute(State{Task: "fibonacci", Size: n, Data: data})
		if err != nil {
			t.Fatal(err)
		}
		var fr fibResult
		if err := json.Unmarshal(res.Data, &fr); err != nil {
			t.Fatal(err)
		}
		if fr.ValueMod64 != v {
			t.Fatalf("fib(%d) = %d, want %d", n, fr.ValueMod64, v)
		}
	}
}

func TestKnapsackKnownValue(t *testing.T) {
	data, err := json.Marshal(knapsackState{
		Capacity: 10,
		Weights:  []int{5, 4, 6, 3},
		Values:   []int{10, 40, 30, 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Knapsack{}.Execute(State{Task: "knapsack", Size: 4, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	var kr knapsackResult
	if err := json.Unmarshal(res.Data, &kr); err != nil {
		t.Fatal(err)
	}
	if kr.Best != 90 {
		t.Fatalf("knapsack best = %d, want 90", kr.Best)
	}
}

func TestKnapsackValidation(t *testing.T) {
	data, _ := json.Marshal(knapsackState{Capacity: -1})
	if _, err := (Knapsack{}).Execute(State{Task: "knapsack", Data: data}); err == nil {
		t.Fatal("negative capacity should fail")
	}
	data, _ = json.Marshal(knapsackState{Capacity: 5, Weights: []int{1}, Values: []int{1, 2}})
	if _, err := (Knapsack{}).Execute(State{Task: "knapsack", Data: data}); err == nil {
		t.Fatal("mismatched weights/values should fail")
	}
}

func TestSieveKnownCounts(t *testing.T) {
	counts := map[int]int{10: 4, 100: 25, 1000: 168, 10000: 1229}
	for limit, want := range counts {
		data, err := json.Marshal(sieveState{Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Sieve{}.Execute(State{Task: "sieve", Size: limit / 1000, Data: data})
		if err != nil {
			t.Fatal(err)
		}
		var sr sieveResult
		if err := json.Unmarshal(res.Data, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Primes != want {
			t.Fatalf("π(%d) = %d, want %d", limit, sr.Primes, want)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	st, err := FFT{}.Generate(r, 64)
	if err != nil {
		t.Fatal(err)
	}
	var fs fftState
	if err := json.Unmarshal(st.Data, &fs); err != nil {
		t.Fatal(err)
	}
	var timeEnergy float64
	for i := range fs.Re {
		timeEnergy += fs.Re[i]*fs.Re[i] + fs.Im[i]*fs.Im[i]
	}
	res, err := FFT{}.Execute(st)
	if err != nil {
		t.Fatal(err)
	}
	var fr fftResult
	if err := json.Unmarshal(res.Data, &fr); err != nil {
		t.Fatal(err)
	}
	// Parseval: freq-domain energy = n × time-domain energy for an
	// unnormalized transform.
	want := float64(len(fs.Re)) * timeEnergy
	if diff := fr.Energy - want; diff > 1e-6*want || diff < -1e-6*want {
		t.Fatalf("Parseval violated: freq %v vs n·time %v", fr.Energy, want)
	}
}

func TestFFTValidation(t *testing.T) {
	data, _ := json.Marshal(fftState{Re: []float64{1, 2, 3}, Im: []float64{0, 0, 0}})
	if _, err := (FFT{}).Execute(State{Task: "fft", Data: data}); err == nil {
		t.Fatal("non-power-of-two length should fail")
	}
}

// The analytic Work model must track measured operation counts to within a
// constant factor across one decade of sizes, for every task. This pins
// the simulation's service-time model to the real computations.
func TestWorkModelTracksMeasuredOps(t *testing.T) {
	p := DefaultPool()
	r := rand.New(rand.NewSource(11))
	for _, name := range p.Names() {
		task, _ := p.ByName(name)
		type pt struct{ ratio float64 }
		var ratios []pt
		for _, size := range []int{8, 16, 32} {
			st, err := task.Generate(r, size)
			if err != nil {
				t.Fatalf("%s Generate(%d): %v", name, size, err)
			}
			res, err := task.Execute(st)
			if err != nil {
				t.Fatalf("%s Execute(%d): %v", name, size, err)
			}
			w := task.Work(size)
			if w <= 0 || res.Ops <= 0 {
				t.Fatalf("%s size %d: work %v ops %d", name, size, w, res.Ops)
			}
			ratios = append(ratios, pt{ratio: float64(res.Ops) / w})
		}
		// Ratios across sizes should stay within a 16x band: the model
		// captures the growth rate even if constants differ.
		minR, maxR := ratios[0].ratio, ratios[0].ratio
		for _, p := range ratios[1:] {
			if p.ratio < minR {
				minR = p.ratio
			}
			if p.ratio > maxR {
				maxR = p.ratio
			}
		}
		if maxR/minR > 16 {
			t.Fatalf("%s: ops/Work ratio drifts %vx across sizes (min %v max %v)",
				name, maxR/minR, minR, maxR)
		}
	}
}

func TestGenerateNegativeSizeRejectedWhereApplicable(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, task := range []Task{Quicksort{}, Bubblesort{}, Mergesort{}, Minimax{}} {
		if _, err := task.Generate(r, -1); err == nil {
			t.Fatalf("%s should reject negative size", task.Name())
		}
	}
	// Clamping tasks accept any size.
	for _, task := range []Task{NQueens{}, Fibonacci{}, MatMul{}, Knapsack{}, Sieve{}, FFT{}} {
		if _, err := task.Generate(r, -1); err != nil {
			t.Fatalf("%s should clamp negative size, got %v", task.Name(), err)
		}
	}
}
