package tasks

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// The paper's §VII-1 notes that a task "may be unable to take advantage
// of the computational resources of a particular server" — the
// acceleration limit — and that "this limit can be surpassed by applying
// techniques of code parallelization", which it leaves as future work.
// This file implements that extension: tasks that declare (and actually
// exploit) intra-task parallelism.

// Parallelizable is implemented by tasks whose code can use more than
// one core.
type Parallelizable interface {
	Task
	// Parallelism reports how many cores a state of the given size can
	// exploit.
	Parallelism(size int) int
}

// ParMatMul is the parallel dense matrix multiplication: row blocks are
// computed by a bounded worker pool. Work is the same n³ as MatMul; the
// simulation lets it consume up to Parallelism(size) cores.
type ParMatMul struct{}

var _ Parallelizable = ParMatMul{}

// Name implements Task.
func (ParMatMul) Name() string { return "parmatmul" }

// Generate implements Task (same state shape as matmul).
func (ParMatMul) Generate(r *rand.Rand, size int) (State, error) {
	n := size
	if n < 1 {
		n = 1
	}
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = r.Float64()*2 - 1
		b[i] = r.Float64()*2 - 1
	}
	return marshalState("parmatmul", size, matmulState{N: n, A: a, B: b})
}

// Parallelism implements Parallelizable: one worker per 8 rows, capped at
// 16 — splitting finer than that drowns in merge overhead (§VII-1's
// "optimal splitting" issue).
func (ParMatMul) Parallelism(size int) int {
	p := size / 8
	if p < 1 {
		p = 1
	}
	if p > 16 {
		p = 16
	}
	return p
}

// Execute implements Task with a real goroutine worker pool.
func (t ParMatMul) Execute(st State) (Result, error) {
	var in matmulState
	if err := unmarshalState(st, "parmatmul", &in); err != nil {
		return Result{}, err
	}
	n := in.N
	if n < 1 || len(in.A) != n*n || len(in.B) != n*n {
		return Result{}, fmt.Errorf("tasks: parmatmul n=%d with %d/%d elements", n, len(in.A), len(in.B))
	}
	workers := t.Parallelism(st.Size)
	if maxP := runtime.GOMAXPROCS(0); workers > maxP {
		workers = maxP
	}
	if workers < 1 {
		workers = 1
	}
	c := make([]float64, n*n)
	ops := make([]int64, workers)
	var wg sync.WaitGroup
	rowsPer := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var local int64
			for i := lo; i < hi; i++ {
				for kk := 0; kk < n; kk++ {
					aik := in.A[i*n+kk]
					for j := 0; j < n; j++ {
						c[i*n+j] += aik * in.B[kk*n+j]
						local++
					}
				}
			}
			ops[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, o := range ops {
		total += o
	}
	var trace, norm float64
	for i := 0; i < n; i++ {
		trace += c[i*n+i]
	}
	for _, v := range c {
		norm += v * v
	}
	return marshalResult("parmatmul", total, matmulResult{Trace: trace, Norm: math.Sqrt(norm)})
}

// Work implements Task (same sequential work as matmul; the speedup comes
// from using more cores, not from doing less work).
func (ParMatMul) Work(size int) float64 {
	n := size
	if n < 1 {
		n = 1
	}
	return float64(n) * float64(n) * float64(n)
}

// ExtendedPool returns the default pool plus the parallel extension
// tasks.
func ExtendedPool() *Pool {
	base := DefaultPool()
	ts := make([]Task, 0, base.Len()+1)
	for _, name := range base.Names() {
		t, err := base.ByName(name)
		if err != nil {
			// Names come from the pool itself; a miss is impossible.
			panic(err)
		}
		ts = append(ts, t)
	}
	ts = append(ts, ParMatMul{})
	p, err := NewPool(ts...)
	if err != nil {
		panic(err)
	}
	return p
}

// ParallelismOf reports the core cap of a task at a size: 1 for serial
// tasks, the declared parallelism for Parallelizable ones.
func ParallelismOf(t Task, size int) int {
	if p, ok := t.(Parallelizable); ok {
		return p.Parallelism(size)
	}
	return 1
}
