package tasks

import (
	"fmt"
	"math"
	"math/rand"
)

// Minimax is the paper's flagship "complex routine" (§I mentions minimax
// and nqueens as decision-making algorithms that are cheap on flagship
// phones but expensive on old devices). It evaluates a tic-tac-toe-style
// m×m, k-in-a-row position with full-depth minimax search. The state is
// the board plus whose turn it is — exactly the application state a
// homogeneous offloading system would ship.
type Minimax struct{}

var _ Task = Minimax{}

type minimaxState struct {
	// Board is row-major; 0 empty, 1 player X (maximizing), 2 player O.
	Board []int `json:"board"`
	M     int   `json:"m"`
	K     int   `json:"k"`
	Turn  int   `json:"turn"`
	// Depth limits the search depth (0 means full depth).
	Depth int `json:"depth"`
}

type minimaxResult struct {
	BestMove int `json:"bestMove"`
	Score    int `json:"score"`
}

// Name implements Task.
func (Minimax) Name() string { return "minimax" }

// Generate implements Task. The size parameter controls difficulty: it is
// the number of empty cells left on a 3×3 board, clamped to [2, 9]; the
// search tree grows factorially in it (9 empties ≈ 9! ≈ 3.6e5 nodes).
func (Minimax) Generate(r *rand.Rand, size int) (State, error) {
	if size < 0 {
		return State{}, fmt.Errorf("tasks: minimax size %d < 0", size)
	}
	m, k := 3, 3
	empties := size
	if empties < 2 {
		empties = 2
	}
	if empties > m*m {
		empties = m * m
	}
	board := make([]int, m*m)
	// Play (m*m - empties) alternating moves on random cells, producing a
	// legal mid-game position with X and O counts differing by at most 1.
	perm := r.Perm(m * m)
	player := 1
	for _, idx := range perm[:m*m-empties] {
		board[idx] = player
		player = 3 - player
	}
	return marshalState("minimax", size, minimaxState{
		Board: board, M: m, K: k, Turn: player,
	})
}

// Execute implements Task.
func (Minimax) Execute(st State) (Result, error) {
	var in minimaxState
	if err := unmarshalState(st, "minimax", &in); err != nil {
		return Result{}, err
	}
	if in.M < 1 || len(in.Board) != in.M*in.M {
		return Result{}, fmt.Errorf("tasks: minimax board %d cells for m=%d", len(in.Board), in.M)
	}
	if in.Turn != 1 && in.Turn != 2 {
		return Result{}, fmt.Errorf("tasks: minimax turn %d invalid", in.Turn)
	}
	e := &minimaxEngine{board: in.Board, m: in.M, k: in.K, maxDepth: in.Depth}
	score, move := e.search(in.Turn, 0)
	return marshalResult("minimax", e.ops, minimaxResult{BestMove: move, Score: score})
}

// Work implements Task. The full-depth game tree over e empty cells has
// roughly e! leaves; the engine prunes terminal wins, so e! tracks the
// measured operation counts up to a constant.
func (Minimax) Work(size int) float64 {
	e := size
	if e < 2 {
		e = 2
	}
	if e > 9 {
		e = 9
	}
	return math.Gamma(float64(e) + 1) // e!
}

type minimaxEngine struct {
	board    []int
	m, k     int
	maxDepth int
	ops      int64
}

// search returns (score, bestMove) for the player to move. Scores are +1
// if player 1 ultimately wins, -1 if player 2 wins, 0 for a draw.
func (e *minimaxEngine) search(turn, depth int) (int, int) {
	e.ops++
	if w := e.winner(); w != 0 {
		if w == 1 {
			return 1, -1
		}
		return -1, -1
	}
	full := true
	for _, c := range e.board {
		if c == 0 {
			full = false
			break
		}
	}
	if full || (e.maxDepth > 0 && depth >= e.maxDepth) {
		return 0, -1
	}
	bestMove := -1
	bestScore := 0
	if turn == 1 {
		bestScore = -2
	} else {
		bestScore = 2
	}
	for i, c := range e.board {
		if c != 0 {
			continue
		}
		e.board[i] = turn
		score, _ := e.search(3-turn, depth+1)
		e.board[i] = 0
		if turn == 1 && score > bestScore || turn == 2 && score < bestScore {
			bestScore = score
			bestMove = i
		}
	}
	return bestScore, bestMove
}

// winner scans for k in a row horizontally, vertically and diagonally.
func (e *minimaxEngine) winner() int {
	m, k := e.m, e.k
	at := func(r, c int) int { return e.board[r*m+c] }
	dirs := [4][2]int{{0, 1}, {1, 0}, {1, 1}, {1, -1}}
	for r := 0; r < m; r++ {
		for c := 0; c < m; c++ {
			p := at(r, c)
			if p == 0 {
				continue
			}
			for _, d := range dirs {
				rr, cc := r+(k-1)*d[0], c+(k-1)*d[1]
				if rr < 0 || rr >= m || cc < 0 || cc >= m {
					continue
				}
				run := true
				for s := 1; s < k; s++ {
					if at(r+s*d[0], c+s*d[1]) != p {
						run = false
						break
					}
				}
				if run {
					return p
				}
			}
		}
	}
	return 0
}

// NQueens counts all placements of n non-attacking queens via bitmask
// backtracking.
type NQueens struct{}

var _ Task = NQueens{}

type nqueensState struct {
	N int `json:"n"`
}

type nqueensResult struct {
	Solutions int64 `json:"solutions"`
}

// nqueensSolutions holds the known solution counts for validation.
var nqueensSolutions = map[int]int64{
	1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724,
	11: 2680, 12: 14200,
}

// Name implements Task.
func (NQueens) Name() string { return "nqueens" }

// Generate implements Task. Size is the board dimension, clamped into
// [4, 12] to keep single executions sub-second.
func (NQueens) Generate(_ *rand.Rand, size int) (State, error) {
	n := size
	if n < 4 {
		n = 4
	}
	if n > 12 {
		n = 12
	}
	return marshalState("nqueens", size, nqueensState{N: n})
}

// Execute implements Task.
func (NQueens) Execute(st State) (Result, error) {
	var in nqueensState
	if err := unmarshalState(st, "nqueens", &in); err != nil {
		return Result{}, err
	}
	if in.N < 1 || in.N > 16 {
		return Result{}, fmt.Errorf("tasks: nqueens n=%d out of [1,16]", in.N)
	}
	var ops int64
	var count int64
	all := (1 << in.N) - 1
	var place func(cols, ld, rd int)
	place = func(cols, ld, rd int) {
		ops++
		if cols == all {
			count++
			return
		}
		free := all &^ (cols | ld | rd)
		for free != 0 {
			bit := free & -free
			free ^= bit
			place(cols|bit, (ld|bit)<<1&all, (rd|bit)>>1)
		}
	}
	place(0, 0, 0)
	return marshalResult("nqueens", ops, nqueensResult{Solutions: count})
}

// nqueensNodes holds the exact backtracking node counts (calls to place)
// for each board size; this *is* the task's operation count, so the Work
// model is exact.
var nqueensNodes = map[int]float64{
	4: 17, 5: 54, 6: 153, 7: 552, 8: 2057, 9: 8394, 10: 35539,
	11: 166926, 12: 856189,
}

// Work implements Task. The backtracking node count is known exactly per
// board size, so the model is a lookup.
func (NQueens) Work(size int) float64 {
	n := size
	if n < 4 {
		n = 4
	}
	if n > 12 {
		n = 12
	}
	return nqueensNodes[n]
}
