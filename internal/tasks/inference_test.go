package tasks

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestInferencePoolExtendsDefault(t *testing.T) {
	def := DefaultPool()
	inf := InferencePool()
	if inf.Len() != def.Len()+len(DefaultModels()) {
		t.Fatalf("inference pool has %d tasks, want %d", inf.Len(), def.Len()+len(DefaultModels()))
	}
	// The classic prefix must be unchanged, in order: Pool.Random
	// draws by index, so a changed prefix would shift every pinned
	// schedule digest built on DefaultPool.
	defNames, infNames := def.Names(), inf.Names()
	for i, name := range defNames {
		if infNames[i] != name {
			t.Fatalf("inference pool reordered classic task %d: %q vs %q", i, infNames[i], name)
		}
	}
	for _, m := range DefaultModels() {
		if _, err := inf.ByName("infer-" + m.Model); err != nil {
			t.Fatalf("missing inference task for %q: %v", m.Model, err)
		}
	}
}

func TestInferenceRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, task := range InferenceTasks() {
		task := task.(Inference)
		t.Run(task.Name(), func(t *testing.T) {
			st, err := task.Generate(r, 4)
			if err != nil {
				t.Fatal(err)
			}
			wire, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var back State
			if err := json.Unmarshal(wire, &back); err != nil {
				t.Fatal(err)
			}
			res, err := task.Execute(back)
			if err != nil {
				t.Fatal(err)
			}
			var out inferenceResult
			if err := json.Unmarshal(res.Data, &out); err != nil {
				t.Fatal(err)
			}
			if len(out.Scores) != 4 {
				t.Fatalf("%d scores for batch 4", len(out.Scores))
			}
			if out.Loaded != task.Params() {
				t.Fatalf("session start loaded %d params, want %d", out.Loaded, task.Params())
			}
			if res.Ops <= 0 {
				t.Fatal("no ops counted")
			}
		})
	}
}

func TestInferenceDeterministicAcrossSurrogates(t *testing.T) {
	// The same state must produce identical scores and ops on any
	// executor — weights derive from the model name, not from process
	// state or cache warmth.
	task := Inference{Model: DefaultModels()[0]}
	st, err := task.Generate(rand.New(rand.NewSource(7)), 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := task.Execute(st)
	if err != nil {
		t.Fatal(err)
	}
	modelCache.Range(func(k, _ any) bool { // simulate a cold surrogate
		modelCache.Delete(k)
		return true
	})
	b, err := task.Execute(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Data) != string(b.Data) || a.Ops != b.Ops {
		t.Fatalf("execution depends on cache warmth: %s/%d vs %s/%d", a.Data, a.Ops, b.Data, b.Ops)
	}
}

func TestInferenceSessionAmortization(t *testing.T) {
	task := Inference{Model: DefaultModels()[0]}
	st, err := task.Generate(rand.New(rand.NewSource(9)), 2)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := task.Execute(st)
	if err != nil {
		t.Fatal(err)
	}
	steady := st
	if err := ClearSessionStart(&steady); err != nil {
		t.Fatal(err)
	}
	warm, err := task.Execute(steady)
	if err != nil {
		t.Fatal(err)
	}
	loadOps := int64(float64(task.Params()) * task.Model.LoadFactor)
	if loaded.Ops != warm.Ops+loadOps {
		t.Fatalf("session-start ops %d, steady %d, want load delta %d", loaded.Ops, warm.Ops, loadOps)
	}
	// Scores must not depend on the load flag.
	var a, b inferenceResult
	if err := json.Unmarshal(loaded.Data, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(warm.Data, &b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("score %d differs across load flag: %v vs %v", i, a.Scores[i], b.Scores[i])
		}
	}
	if b.Loaded != 0 {
		t.Fatalf("steady request reported %d loaded params", b.Loaded)
	}
	// Re-marking restores the load billing.
	remarked := steady
	if err := MarkSessionStart(&remarked); err != nil {
		t.Fatal(err)
	}
	again, err := task.Execute(remarked)
	if err != nil {
		t.Fatal(err)
	}
	if again.Ops != loaded.Ops {
		t.Fatalf("re-marked ops %d, want %d", again.Ops, loaded.Ops)
	}
}

func TestInferenceWorkModel(t *testing.T) {
	for _, task := range InferenceTasks() {
		task := task.(Inference)
		// Work must scale linearly in batch size (homogeneous
		// batchable compute) and Execute's measured ops must track it
		// within a constant factor across sizes.
		w1, w4 := task.Work(1), task.Work(4)
		if w4 != 4*w1 {
			t.Fatalf("%s: Work(4)=%v, want 4×Work(1)=%v", task.Name(), w4, 4*w1)
		}
		r := rand.New(rand.NewSource(3))
		var ratios []float64
		for _, batch := range []int{1, 4, 16} {
			st, err := task.Generate(r, batch)
			if err != nil {
				t.Fatal(err)
			}
			if err := ClearSessionStart(&st); err != nil {
				t.Fatal(err)
			}
			res, err := task.Execute(st)
			if err != nil {
				t.Fatal(err)
			}
			ratios = append(ratios, float64(res.Ops)/task.Work(batch))
		}
		for _, ratio := range ratios[1:] {
			if ratio != ratios[0] {
				t.Fatalf("%s: ops/Work ratio drifts across batch sizes: %v", task.Name(), ratios)
			}
		}
		if task.MemoryBytes() != task.Params()*8 {
			t.Fatalf("%s: memory %d for %d params", task.Name(), task.MemoryBytes(), task.Params())
		}
		if task.LoadWork() <= 0 {
			t.Fatalf("%s: non-positive load work", task.Name())
		}
	}
}

func TestInferenceValidation(t *testing.T) {
	task := Inference{Model: DefaultModels()[0]}
	// Wrong model routed to this task.
	data, _ := json.Marshal(inferenceState{Model: "other", Batch: 1, In: make([]float64, 16)})
	if _, err := task.Execute(State{Task: task.Name(), Data: data}); err == nil {
		t.Fatal("wrong model accepted")
	}
	// Batch / feature length mismatch.
	data, _ = json.Marshal(inferenceState{Model: "mobilenet", Batch: 2, In: make([]float64, 16)})
	if _, err := task.Execute(State{Task: task.Name(), Data: data}); err == nil {
		t.Fatal("short feature vector accepted")
	}
	// Wrong task name entirely.
	if _, err := task.Execute(State{Task: "quicksort", Data: data}); err == nil {
		t.Fatal("foreign state accepted")
	}
}
