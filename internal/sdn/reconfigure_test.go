package sdn

import (
	"testing"
	"time"

	"accelcloud/internal/sim"
)

// In-flight requests complete even after their group's servers are
// deregistered (the provisioning loop's relaunch must never lose work).
func TestInFlightSurvivesRemoveServers(t *testing.T) {
	env := sim.NewEnvironment()
	a := newAccel(t, env, nil)
	addBackend(t, env, a, 0, "t2.small")

	var got Outcome
	completed := false
	if err := a.Route(Request{UserID: 1, Group: 0, Work: 200_000}, func(o Outcome) {
		got = o
		completed = true
	}); err != nil {
		t.Fatal(err)
	}
	// Let the request reach the backend, then rip the group out.
	if err := env.RunFor(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	a.RemoveServers(0)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !completed || got.Dropped {
		t.Fatalf("in-flight request lost: completed=%v outcome=%+v", completed, got)
	}
}

// New requests after a pool swap land on the new servers only.
func TestRequestsAfterSwapUseNewServers(t *testing.T) {
	env := sim.NewEnvironment()
	a := newAccel(t, env, nil)
	old := addBackend(t, env, a, 0, "t2.small")
	a.RemoveServers(0)
	fresh := addBackend(t, env, a, 0, "t2.small")

	done := 0
	for i := 0; i < 3; i++ {
		if err := a.Route(Request{UserID: i, Group: 0, Work: 1000}, func(Outcome) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Fatalf("completed %d/3", done)
	}
	if old.Stats().Completed != 0 {
		t.Fatal("retired server received new work")
	}
	if fresh.Stats().Completed != 3 {
		t.Fatalf("fresh server completed %d/3", fresh.Stats().Completed)
	}
}

// Routing overhead statistics accumulate even for dropped requests (the
// front-end does the routing work before discovering the empty group).
func TestRoutingStatsOnDrops(t *testing.T) {
	env := sim.NewEnvironment()
	a := newAccel(t, env, nil)
	dropped := 0
	for i := 0; i < 5; i++ {
		if err := a.Route(Request{UserID: i, Group: 7, Work: 10}, func(o Outcome) {
			if o.Dropped {
				dropped++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dropped != 5 {
		t.Fatalf("dropped %d/5", dropped)
	}
	if w := a.RoutingStats()[7]; w == nil || w.N() != 5 {
		t.Fatal("routing stats missing for dropped group")
	}
}
