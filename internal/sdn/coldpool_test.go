package sdn

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"accelcloud/internal/dalvik"
	"accelcloud/internal/router"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

// TestColdPoolParkAndActivate walks the scale-to-zero lifecycle at the
// front-end: an idle backend is parked by SweepCold, /stats marks it
// cold, the next request reactivates it (paying the configured
// cold-start latency), and TakeActivations hands the activation count
// to the autoscale cost model exactly once.
func TestColdPoolParkAndActivate(t *testing.T) {
	const coldStart = 30 * time.Millisecond
	fe, err := New(WithColdPool(50*time.Millisecond, coldStart))
	if err != nil {
		t.Fatal(err)
	}
	sur, err := dalvik.NewSurrogate("surrogate-1", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := sur.PushPool(tasks.DefaultPool()); err != nil {
		t.Fatal(err)
	}
	backend := httptest.NewServer(sur.Handler())
	t.Cleanup(backend.Close)
	if err := fe.Register(1, backend.URL); err != nil {
		t.Fatal(err)
	}

	st, err := tasks.Minimax{}.Generate(sim.NewRNG(5).Stream("gen"), 5)
	if err != nil {
		t.Fatal(err)
	}
	offload := func() (rpc.OffloadResponse, time.Duration) {
		t.Helper()
		start := time.Now()
		resp, code := fe.Offload(context.Background(), rpc.OffloadRequest{
			UserID: 1, Group: 1, BatteryLevel: 0.8, State: st,
		})
		if code != 200 {
			t.Fatalf("offload code %d: %+v", code, resp)
		}
		return resp, time.Since(start)
	}
	offload() // warm use, stamps lastUsed

	// Not idle long enough: the sweep must not park it.
	if n := fe.SweepCold(time.Now()); n != 0 {
		t.Fatalf("premature sweep parked %d backends", n)
	}
	// Virtual "an hour later": the backend is idle and parks.
	if n := fe.SweepCold(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("sweep parked %d backends, want 1", n)
	}
	pool := fe.Pool(1)
	if len(pool) != 1 || !pool[0].Cold || pool[0].State != BackendCold {
		t.Fatalf("pool after sweep = %+v", pool)
	}
	if fe.ActiveCount(1) != 0 {
		t.Fatalf("active count = %d after park", fe.ActiveCount(1))
	}

	// First arrival reactivates, charged with the cold-start latency.
	_, took := offload()
	if took < coldStart {
		t.Fatalf("cold request took %v, want >= the %v cold start", took, coldStart)
	}
	if acts := fe.TakeActivations(); len(acts) != 1 || acts[1] != 1 {
		t.Fatalf("activations = %v, want map[1:1]", acts)
	}
	// The drain is one-shot: the controller must not double-bill.
	if acts := fe.TakeActivations(); acts != nil {
		t.Fatalf("second TakeActivations = %v, want nil", acts)
	}
	// Back in rotation: warm requests pay no cold start.
	if _, took := offload(); took >= coldStart {
		t.Fatalf("warm request took %v, should not pay the cold start again", took)
	}
	if fe.ColdStartLatency() != coldStart {
		t.Fatalf("ColdStartLatency = %v", fe.ColdStartLatency())
	}
}

// TestSweepColdSparesBusyBackends proves the janitor never parks a
// backend with queued or in-flight work: pressure resets idleness.
func TestSweepColdSparesBusyBackends(t *testing.T) {
	fe, err := New(WithColdPool(time.Millisecond, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Register(1, "http://a"); err != nil {
		t.Fatal(err)
	}
	// Reserve the backend as an in-flight request would.
	rt := fe.rt
	p, err := rt.Pick(1)
	if err != nil {
		t.Fatal(err)
	}
	if n := fe.SweepCold(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("sweep parked %d backends with work in flight", n)
	}
	rt.Release(p, true)
	if n := fe.SweepCold(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("sweep parked %d idle backends, want 1", n)
	}
}

// TestSweepColdNoopWithoutColdPool pins the compatibility default:
// front-ends built without WithColdPool never park anything.
func TestSweepColdNoopWithoutColdPool(t *testing.T) {
	fe, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Register(1, "http://a"); err != nil {
		t.Fatal(err)
	}
	if n := fe.SweepCold(time.Now().Add(24 * time.Hour)); n != 0 {
		t.Fatalf("cold-pool-free front-end parked %d backends", n)
	}
	if got := fe.Pool(1)[0].State; got != router.StateActive {
		t.Fatalf("state = %s", got)
	}
}
