package sdn

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/trace"
)

// FrontEnd is the real (HTTP) SDN-accelerator: it terminates client
// offloading requests, routes them to registered surrogate back-ends by
// acceleration group, measures the Fig 7a timing components, and logs
// each request to the trace store the predictor consumes.
type FrontEnd struct {
	log *trace.Store
	// processingDelay artificially reproduces the paper's ≈150 ms
	// front-end overhead when non-zero (useful for demos; tests keep
	// it 0).
	processingDelay time.Duration

	mu       sync.Mutex
	backends map[int][]*rpc.Client
	rr       map[int]int
	routed   int64
	dropped  int64
}

// NewFrontEnd builds an empty front-end. log may be nil to disable
// request logging.
func NewFrontEnd(log *trace.Store, processingDelay time.Duration) (*FrontEnd, error) {
	if processingDelay < 0 {
		return nil, fmt.Errorf("sdn: negative processing delay %v", processingDelay)
	}
	return &FrontEnd{
		log:             log,
		processingDelay: processingDelay,
		backends:        make(map[int][]*rpc.Client),
		rr:              make(map[int]int),
	}, nil
}

// Register adds a surrogate base URL under an acceleration group.
func (f *FrontEnd) Register(group int, baseURL string) error {
	if group < 0 {
		return fmt.Errorf("sdn: negative group %d", group)
	}
	if baseURL == "" {
		return errors.New("sdn: empty backend url")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.backends[group] = append(f.backends[group], rpc.NewClient(baseURL))
	return nil
}

// Backends reports the registered groups and backend counts.
func (f *FrontEnd) Backends() map[int]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[int]int, len(f.backends))
	for g, bs := range f.backends {
		out[g] = len(bs)
	}
	return out
}

// pick selects the next backend of a group round-robin.
func (f *FrontEnd) pick(group int) (*rpc.Client, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	bs := f.backends[group]
	if len(bs) == 0 {
		return nil, fmt.Errorf("sdn: no backend for group %d", group)
	}
	c := bs[f.rr[group]%len(bs)]
	f.rr[group]++
	return c, nil
}

// Handler serves the front-end protocol:
//
//	POST /offload  — route a client request to its acceleration group
//	GET  /healthz  — liveness
//	GET  /stats    — counters and backend registry
func (f *FrontEnd) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(rpc.PathOffload, f.handleOffload)
	mux.HandleFunc(rpc.PathHealth, func(w http.ResponseWriter, r *http.Request) {
		rpc.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc(rpc.PathStats, func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		groups := make([]int, 0, len(f.backends))
		for g := range f.backends {
			groups = append(groups, g)
		}
		sort.Ints(groups)
		payload := struct {
			Routed   int64       `json:"routed"`
			Dropped  int64       `json:"dropped"`
			Groups   []int       `json:"groups"`
			Backends map[int]int `json:"backends"`
		}{Routed: f.routed, Dropped: f.dropped, Groups: groups, Backends: map[int]int{}}
		for g, bs := range f.backends {
			payload.Backends[g] = len(bs)
		}
		f.mu.Unlock()
		rpc.WriteJSON(w, http.StatusOK, payload)
	})
	return mux
}

func (f *FrontEnd) handleOffload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rpc.WriteJSON(w, http.StatusMethodNotAllowed, rpc.OffloadResponse{Error: "POST only"})
		return
	}
	var req rpc.OffloadRequest
	if err := rpc.ReadJSON(r, &req); err != nil {
		rpc.WriteJSON(w, http.StatusBadRequest, rpc.OffloadResponse{Error: err.Error()})
		return
	}
	if err := req.Validate(); err != nil {
		rpc.WriteJSON(w, http.StatusBadRequest, rpc.OffloadResponse{Error: err.Error()})
		return
	}
	routeStart := time.Now()
	if f.processingDelay > 0 {
		time.Sleep(f.processingDelay)
	}
	backend, err := f.pick(req.Group)
	if err != nil {
		f.mu.Lock()
		f.dropped++
		f.mu.Unlock()
		rpc.WriteJSON(w, http.StatusServiceUnavailable, rpc.OffloadResponse{Error: err.Error()})
		return
	}
	routingMs := float64(time.Since(routeStart)) / float64(time.Millisecond)

	backendStart := time.Now()
	resp, err := backend.Execute(r.Context(), rpc.ExecuteRequest{State: req.State})
	backendTotalMs := float64(time.Since(backendStart)) / float64(time.Millisecond)
	if err != nil {
		f.mu.Lock()
		f.dropped++
		f.mu.Unlock()
		rpc.WriteJSON(w, http.StatusBadGateway, rpc.OffloadResponse{Error: err.Error()})
		return
	}
	// T2 is the backend round trip minus the execution itself.
	t2Ms := backendTotalMs - resp.CloudMs
	if t2Ms < 0 {
		t2Ms = 0
	}
	f.mu.Lock()
	f.routed++
	f.mu.Unlock()
	if f.log != nil {
		total := time.Since(routeStart)
		battery := req.BatteryLevel
		// Log failures must not fail the request path.
		_ = f.log.Append(trace.Record{
			Timestamp:    time.Now(),
			UserID:       req.UserID,
			Group:        req.Group,
			BatteryLevel: battery,
			RTT:          total,
		})
	}
	rpc.WriteJSON(w, http.StatusOK, rpc.OffloadResponse{
		Result: resp.Result,
		Server: resp.Server,
		Group:  req.Group,
		Timings: rpc.Timings{
			RoutingMs: routingMs,
			BackendMs: t2Ms,
			CloudMs:   resp.CloudMs,
		},
	})
}

// WaitHealthy polls a server's health endpoint until it responds or the
// context expires — a convenience for cluster bring-up in examples and
// tests.
func WaitHealthy(ctx context.Context, baseURL string) error {
	client := rpc.NewClient(baseURL)
	for {
		if err := client.Health(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("sdn: %s never became healthy: %w", baseURL, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}
