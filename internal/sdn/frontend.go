package sdn

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"accelcloud/internal/router"
	"accelcloud/internal/rpc"
	"accelcloud/internal/serve"
	"accelcloud/internal/trace"
	"accelcloud/internal/wire"
)

// BackendState is the lifecycle state of one registered surrogate.
type BackendState = router.State

const (
	// BackendActive backends receive new requests.
	BackendActive = router.StateActive
	// BackendDraining backends finish their in-flight requests but are
	// never picked for new ones — the scale-down path of the
	// autoscaling control loop (DESIGN.md §5).
	BackendDraining = router.StateDraining
	// BackendEjected backends are fenced off by the failure detector
	// (internal/health) — suspected dead or degraded, reversible via
	// Reinstate (DESIGN.md §7).
	BackendEjected = router.StateEjected
	// BackendCold backends were scaled to zero after sitting idle;
	// the first request of an all-cold group reactivates one, paying
	// the configured cold-start latency (DESIGN.md §9).
	BackendCold = router.StateCold
)

// statusClientClosedRequest is nginx's 499: the client abandoned the
// request before the backend hop ran. A 4xx-class code, so the rpc
// retry budget never re-sends it.
const statusClientClosedRequest = 499

// ErrBackendBusy is returned by Remove while a backend still has
// in-flight requests; drain first and retry once Inflight reports 0.
var ErrBackendBusy = router.ErrBackendBusy

// ErrUnknownBackend is returned when a (group, url) pair is not
// registered.
var ErrUnknownBackend = router.ErrUnknownBackend

// BackendInfo is a point-in-time snapshot of one backend, exposed by
// Pool and the /stats endpoint.
type BackendInfo = router.BackendInfo

// FrontEnd is the real (HTTP) SDN-accelerator: it terminates client
// offloading requests, routes them to registered surrogate back-ends by
// acceleration group, measures the Fig 7a timing components, and logs
// each request to the trace sink the predictor consumes.
//
// The data plane is the lock-free internal/router: per-group pools are
// published as immutable RCU snapshots, so the request hot path (pick,
// release, drop accounting, /stats) acquires no mutexes while the
// control plane (Register, Drain, Remove — driven by the autoscaling
// loop, DESIGN.md §5–§6) republishes snapshots under its own small
// mutex. The pick policy (round-robin, least-inflight, or
// power-of-two-choices) is fixed at construction.
type FrontEnd struct {
	log trace.Sink
	// processingDelay artificially reproduces the paper's ≈150 ms
	// front-end overhead when non-zero (useful for demos; tests keep
	// it 0).
	processingDelay time.Duration

	rt *router.Router

	// coldAfter/coldStart are the scale-to-zero knobs (WithColdPool):
	// SweepCold parks backends idle longer than coldAfter, and the
	// request that reactivates a parked backend sleeps coldStart.
	coldAfter time.Duration
	coldStart time.Duration

	// observer, when set, receives every backend hop's outcome — the
	// passive signal feed of the failure detector. Atomic so the hot
	// path reads it lock-free.
	observer atomic.Pointer[Observer]

	// idem deduplicates retried and hedged re-sends of keyed requests,
	// so a side-effecting task never executes twice for one logical
	// call (keyless requests bypass it entirely).
	idem idemCache

	// region names the geographic region this front-end serves
	// (WithRegion); spilled counts absorbed cross-region requests —
	// arrivals whose Origin names a different home region.
	region  string
	spilled atomic.Int64

	// metrics is the WithMetrics instrumentation; nil keeps the request
	// path entirely uninstrumented.
	metrics *feMetrics
}

// Observer is the per-request outcome hook the failure detector
// subscribes to: the routed group and backend, the hop error (nil on
// success), and the backend round trip in milliseconds.
type Observer func(group int, url string, err error, latencyMs float64)

// sinkCounters is the shed/error surface a lossy trace sink exposes
// (trace.Async qualifies); /stats reports it so dropped trace records
// are visible at runtime.
type sinkCounters interface {
	Dropped() int64
	SinkErrors() int64
}

// Policy reports the front-end's pick policy.
func (f *FrontEnd) Policy() router.Policy { return f.rt.Policy() }

// Register adds a surrogate base URL under an acceleration group. A URL
// currently draining in the same group is re-activated in place (the
// un-drain path: a scale-up arriving before the drain completed), so
// flapping never loses a warm backend.
func (f *FrontEnd) Register(group int, baseURL string) error {
	return f.rt.Register(group, baseURL)
}

// RegisterVersion registers a backend carrying a version label — the
// selector the canary pick policy ("canary:v2=0.05") splits traffic
// on. Everything else matches Register.
func (f *FrontEnd) RegisterVersion(group int, baseURL, version string) error {
	return f.rt.RegisterVersion(group, baseURL, version)
}

// Drain fences a backend off from new requests; in-flight requests
// complete normally. Draining an already-draining backend is a no-op.
func (f *FrontEnd) Drain(group int, baseURL string) error {
	return f.rt.Drain(group, baseURL)
}

// Inflight reports a backend's current in-flight request count.
func (f *FrontEnd) Inflight(group int, baseURL string) (int, error) {
	return f.rt.Inflight(group, baseURL)
}

// Remove deregisters an idle backend. It fails with ErrBackendBusy while
// requests are still in flight — drain first, then retry; the
// front-end never abandons accepted work.
func (f *FrontEnd) Remove(group int, baseURL string) error {
	return f.rt.Remove(group, baseURL)
}

// Eject fences a suspected-unhealthy backend off from new requests,
// reversibly — the failure detector's lever (DESIGN.md §7).
func (f *FrontEnd) Eject(group int, baseURL string) error {
	return f.rt.Eject(group, baseURL)
}

// Reinstate returns an ejected backend to rotation.
func (f *FrontEnd) Reinstate(group int, baseURL string) error {
	return f.rt.Reinstate(group, baseURL)
}

// Evict unconditionally deregisters a backend, in-flight requests or
// not — the repair path for a confirmed-dead backend whose accepted
// work is already lost.
func (f *FrontEnd) Evict(group int, baseURL string) error {
	return f.rt.Evict(group, baseURL)
}

// SetBackendTimeout bounds the proxy hop to backends registered after
// the call (0 keeps the rpc default).
//
// Deprecated: pass WithBackendTimeout to New instead — a front-end
// should be fully configured before it serves traffic. Kept for the
// accelcloud façade's compatibility surface only.
func (f *FrontEnd) SetBackendTimeout(d time.Duration) {
	f.rt.SetClientTimeout(d)
}

// SetObserver installs the per-request outcome hook (nil uninstalls).
//
// Deprecated: pass WithObserver to New — with an ObserverRef when the
// observer is constructed after the front-end. Kept for the accelcloud
// façade's compatibility surface only.
func (f *FrontEnd) SetObserver(ob Observer) {
	if ob == nil {
		f.observer.Store(nil)
		return
	}
	f.observer.Store(&ob)
}

// SweepCold parks every backend that has been idle (no in-flight or
// queued work, no Release) for at least the WithColdPool threshold —
// the scale-to-zero janitor. Daemons call it on a ticker; hermetic
// benches call it with virtual now. A no-op (returning 0) unless the
// front-end was built WithColdPool. Returns the number of backends
// parked.
func (f *FrontEnd) SweepCold(now time.Time) int {
	if f.coldAfter <= 0 {
		return 0
	}
	return f.rt.MarkIdleCold(f.coldAfter, now)
}

// TakeActivations drains the per-group cold-start activation counts
// accumulated since the previous call — the autoscale controller reads
// them once per slot into Decision.Activated. Nil when nothing
// activated.
func (f *FrontEnd) TakeActivations() map[int]int64 {
	return f.rt.TakeActivations()
}

// ColdStartLatency reports the configured per-activation latency (the
// cost the autoscale model charges per activation).
func (f *FrontEnd) ColdStartLatency() time.Duration { return f.coldStart }

// Region reports the front-end's configured region name ("" when
// unregioned).
func (f *FrontEnd) Region() string { return f.region }

// Spilled reports how many cross-region requests this front-end has
// absorbed: arrivals whose Origin named a different home region.
func (f *FrontEnd) Spilled() int64 { return f.spilled.Load() }

// Backends reports the registered groups and backend counts (active and
// draining alike — they are all still serving or finishing work).
func (f *FrontEnd) Backends() map[int]int { return f.rt.Backends() }

// Pool snapshots one group's backends in registration order.
func (f *FrontEnd) Pool(group int) []BackendInfo { return f.rt.Pool(group) }

// ActiveCount reports how many of a group's backends accept new work.
func (f *FrontEnd) ActiveCount(group int) int { return f.rt.ActiveCount(group) }

// Handler serves the front-end protocol:
//
//	POST /offload        — route a client request to its acceleration group
//	POST /offload/batch  — execute a chain of calls in one round trip
//	GET  /healthz        — liveness
//	GET  /stats          — counters, backend registry, and per-backend states
func (f *FrontEnd) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(rpc.PathOffload, f.handleOffload)
	mux.HandleFunc(rpc.PathOffloadBatch, f.handleOffloadBatch)
	mux.HandleFunc(rpc.PathHealth, func(w http.ResponseWriter, r *http.Request) {
		rpc.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc(rpc.PathStats, func(w http.ResponseWriter, r *http.Request) {
		// One atomic snapshot load; encoding happens outside any
		// critical section — a slow client can no longer stall the
		// routing plane.
		st := f.rt.Stats()
		groups := make([]int, 0, len(st.Pools))
		for g := range st.Pools {
			groups = append(groups, g)
		}
		sort.Ints(groups)
		payload := struct {
			Routed   int64                 `json:"routed"`
			Dropped  int64                 `json:"dropped"`
			Policy   string                `json:"policy"`
			Region   string                `json:"region,omitempty"`
			Spilled  int64                 `json:"spilled"`
			Groups   []int                 `json:"groups"`
			Backends map[int]int           `json:"backends"`
			Pools    map[int][]BackendInfo `json:"pools"`
			// Trace-sink health: records shed by a full async buffer
			// and sink append failures. Zero unless the sink exposes
			// counters (trace.Async does).
			TraceDropped    int64 `json:"traceDropped"`
			TraceSinkErrors int64 `json:"traceSinkErrors"`
		}{Routed: st.Routed, Dropped: st.Dropped, Policy: f.rt.Policy().Name(),
			Region: f.region, Spilled: f.spilled.Load(),
			Groups: groups, Backends: map[int]int{}, Pools: st.Pools}
		for g, infos := range st.Pools {
			payload.Backends[g] = len(infos)
		}
		if sc, ok := f.log.(sinkCounters); ok {
			payload.TraceDropped = sc.Dropped()
			payload.TraceSinkErrors = sc.SinkErrors()
		}
		rpc.WriteJSON(w, http.StatusOK, payload)
	})
	return mux
}

func (f *FrontEnd) handleOffload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rpc.WriteJSON(w, http.StatusMethodNotAllowed, rpc.OffloadResponse{Error: "POST only"})
		return
	}
	var req rpc.OffloadRequest
	if err := rpc.ReadJSON(r, &req); err != nil {
		rpc.WriteJSON(w, http.StatusBadRequest, rpc.OffloadResponse{Error: err.Error()})
		return
	}
	resp, code := f.Offload(r.Context(), req)
	rpc.WriteJSON(w, code, resp)
}

// handleOffloadBatch executes a chain of calls in one HTTP round trip —
// the JSON compat form of a binary batch frame, with the same per-call
// fan-out through the router.
func (f *FrontEnd) handleOffloadBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rpc.WriteJSON(w, http.StatusMethodNotAllowed, rpc.BatchResponse{})
		return
	}
	var batch rpc.BatchRequest
	if err := rpc.ReadJSON(r, &batch); err != nil {
		rpc.WriteJSON(w, http.StatusBadRequest, rpc.BatchResponse{})
		return
	}
	if len(batch.Calls) == 0 || len(batch.Calls) > wire.MaxBatchCalls {
		rpc.WriteJSON(w, http.StatusBadRequest, rpc.BatchResponse{})
		return
	}
	rpc.WriteJSON(w, http.StatusOK, f.offloadBatch(r.Context(), batch))
}

// offloadBatch fans a chain out per call, so the data plane's
// accounting (picks, in-flight counters, health observations, chaos
// injection) is identical whether calls arrive alone or chained.
func (f *FrontEnd) offloadBatch(ctx context.Context, batch rpc.BatchRequest) rpc.BatchResponse {
	results := make([]rpc.BatchResult, len(batch.Calls))
	var wg sync.WaitGroup
	for i, call := range batch.Calls {
		wg.Add(1)
		go func(i int, call rpc.OffloadRequest) {
			defer wg.Done()
			resp, code := f.Offload(ctx, call)
			results[i] = rpc.BatchResult{Code: code, Resp: resp}
		}(i, call)
	}
	wg.Wait()
	return rpc.BatchResponse{Results: results}
}

// Offload routes one request end to end — validation, idempotency
// dedup, pick, proxy hop, release, observation, trace logging — and
// returns the response plus its HTTP-equivalent status code. It is the
// protocol-neutral core both the JSON handler and the binary frame
// server dispatch into.
func (f *FrontEnd) Offload(ctx context.Context, req rpc.OffloadRequest) (rpc.OffloadResponse, int) {
	m := f.metrics
	if m == nil {
		return f.offload(ctx, req)
	}
	start := time.Now()
	resp, code := f.offload(ctx, req)
	m.offloads.Inc()
	if code != http.StatusOK {
		m.errors.Inc()
	}
	m.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if sp := resp.Span; sp != nil {
		m.sampled.Inc()
		m.hopQueue.Observe(sp.QueueMs)
		m.hopLinger.Observe(sp.LingerMs)
		m.hopCold.Observe(sp.ColdMs)
		m.hopNet.Observe(sp.NetworkMs)
		m.hopExec.Observe(sp.ExecMs)
	}
	return resp, code
}

func (f *FrontEnd) offload(ctx context.Context, req rpc.OffloadRequest) (rpc.OffloadResponse, int) {
	if err := req.Validate(); err != nil {
		return rpc.OffloadResponse{Error: err.Error()}, http.StatusBadRequest
	}
	if f.region != "" && req.Origin != "" && req.Origin != f.region {
		// A device homed elsewhere spilled (or failed) over into this
		// region; the counter is the /stats evidence the geo smoke and
		// chaos suites assert on.
		f.spilled.Add(1)
	}
	if req.IdemKey != "" {
		return f.idem.do(ctx, req.IdemKey, func() (rpc.OffloadResponse, int) {
			return f.offloadOnce(ctx, req)
		})
	}
	return f.offloadOnce(ctx, req)
}

// offloadOnce is one actual trip through the router and the backend.
func (f *FrontEnd) offloadOnce(ctx context.Context, req rpc.OffloadRequest) (rpc.OffloadResponse, int) {
	routeStart := time.Now()
	if f.processingDelay > 0 {
		time.Sleep(f.processingDelay)
	}
	picked, err := f.rt.Pick(req.Group)
	if err != nil {
		// Saturation (every queue full) and no-backend alike are 503s;
		// the body carries the queue-full marker when it applies, so
		// rpc.IsQueueFull classifies the rejection client-side.
		f.rt.CountDrop()
		return rpc.OffloadResponse{Error: err.Error()}, http.StatusServiceUnavailable
	}
	var coldMs float64
	if picked.ColdStarted() && f.coldStart > 0 {
		// This request woke a parked backend; charge it the cold start
		// (the activation count reaches the autoscale cost model via
		// TakeActivations).
		coldWait := time.Now()
		select {
		case <-time.After(f.coldStart):
			coldMs = float64(time.Since(coldWait)) / float64(time.Millisecond)
		case <-ctx.Done():
			// The client hung up during the activation wait: drop
			// without charging the backend path — no dispatch on a dead
			// context, no observer signal that could push the failure
			// detector toward ejecting a healthy backend.
			f.rt.Release(picked, false)
			return rpc.OffloadResponse{Error: ctx.Err().Error()}, statusClientClosedRequest
		}
	}
	routingMs := float64(time.Since(routeStart)) / float64(time.Millisecond)

	backendStart := time.Now()
	var resp rpc.ExecuteResponse
	var queueWait serve.Timing
	if q := picked.Queue(); q != nil {
		resp, queueWait, err = q.SubmitTimed(ctx, rpc.ExecuteRequest{State: req.State})
	} else {
		resp, err = picked.Client().Execute(ctx, rpc.ExecuteRequest{State: req.State})
	}
	backendTotalMs := float64(time.Since(backendStart)) / float64(time.Millisecond)
	f.rt.Release(picked, err == nil)
	if errors.Is(err, serve.ErrQueueFull) {
		// Lost the Submit race after an unsaturated Pick: backpressure,
		// not a backend fault — no observer signal, plain 503 with the
		// queue-full marker for the client's re-route retry.
		return rpc.OffloadResponse{Error: err.Error()}, http.StatusServiceUnavailable
	}
	if ob := f.observer.Load(); ob != nil {
		(*ob)(req.Group, picked.URL(), err, backendTotalMs)
	}
	if err != nil {
		return rpc.OffloadResponse{Error: err.Error()}, http.StatusBadGateway
	}
	// T2 is the backend round trip minus the execution itself.
	t2Ms := backendTotalMs - resp.CloudMs
	if t2Ms < 0 {
		t2Ms = 0
	}
	// A non-zero SpanID marks a trace-sampled request: assemble the
	// per-hop breakdown once and share the same *Span between the
	// response and the trace record. The network hop excludes the
	// admission waits the queue itself billed, so the hops stay
	// disjoint and sum to ≈RTT − routing.
	var span *wire.Span
	if req.SpanID != 0 {
		netMs := t2Ms - queueWait.QueueMs - queueWait.LingerMs
		if netMs < 0 {
			netMs = 0
		}
		span = &wire.Span{
			ID:        req.SpanID,
			QueueMs:   queueWait.QueueMs,
			LingerMs:  queueWait.LingerMs,
			ColdMs:    coldMs,
			NetworkMs: netMs,
			ExecMs:    resp.CloudMs,
			Hops:      1,
		}
	}
	if f.log != nil {
		// One clock read serves both the record timestamp and the RTT.
		now := time.Now()
		// Log failures must not fail the request path.
		_ = f.log.Append(trace.Record{
			Timestamp:    now,
			UserID:       req.UserID,
			Group:        req.Group,
			BatteryLevel: req.BatteryLevel,
			RTT:          now.Sub(routeStart),
			Span:         span,
		})
	}
	return rpc.OffloadResponse{
		Result: resp.Result,
		Server: resp.Server,
		Group:  req.Group,
		Timings: rpc.Timings{
			RoutingMs: routingMs,
			BackendMs: t2Ms,
			CloudMs:   resp.CloudMs,
		},
		Span: span,
	}, http.StatusOK
}

// BinaryServer builds the framed-protocol front door: the same
// Offload core behind binary frames on a raw TCP listener, with batch
// frames fanned out per call by the wire server.
func (f *FrontEnd) BinaryServer() *wire.Server {
	return &wire.Server{H: wire.Handlers{Offload: f.Offload}}
}

// ServeBinary serves the framed protocol on lis until the listener
// fails or the returned server is Closed.
func (f *FrontEnd) ServeBinary(lis net.Listener) (*wire.Server, error) {
	srv := f.BinaryServer()
	go func() { _ = srv.Serve(lis) }()
	return srv, nil
}

// WaitHealthy polls a server's health endpoint until it responds or the
// context expires — a convenience for cluster bring-up in examples and
// tests.
func WaitHealthy(ctx context.Context, baseURL string) error {
	client := rpc.NewClient(baseURL)
	for {
		if err := client.Health(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("sdn: %s never became healthy: %w", baseURL, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}
