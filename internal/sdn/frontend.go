package sdn

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/trace"
)

// BackendState is the lifecycle state of one registered surrogate.
type BackendState string

const (
	// BackendActive backends receive new requests.
	BackendActive BackendState = "active"
	// BackendDraining backends finish their in-flight requests but are
	// never picked for new ones — the scale-down path of the
	// autoscaling control loop (DESIGN.md §5).
	BackendDraining BackendState = "draining"
)

// ErrBackendBusy is returned by Remove while a backend still has
// in-flight requests; drain first and retry once Inflight reports 0.
var ErrBackendBusy = errors.New("sdn: backend has in-flight requests")

// ErrUnknownBackend is returned when a (group, url) pair is not
// registered.
var ErrUnknownBackend = errors.New("sdn: unknown backend")

// backend is one registered surrogate endpoint with live routing state.
type backend struct {
	url      string
	client   *rpc.Client
	state    BackendState
	inflight int
}

// BackendInfo is a point-in-time snapshot of one backend, exposed by
// Pool and the /stats endpoint.
type BackendInfo struct {
	URL      string       `json:"url"`
	State    BackendState `json:"state"`
	Inflight int          `json:"inflight"`
}

// FrontEnd is the real (HTTP) SDN-accelerator: it terminates client
// offloading requests, routes them to registered surrogate back-ends by
// acceleration group, measures the Fig 7a timing components, and logs
// each request to the trace sink the predictor consumes.
//
// Per-group pools are mutable while serving: Register adds capacity,
// Drain fences a backend off from new work while its in-flight requests
// complete, and Remove retires it once idle. The autoscaling control
// loop (internal/autoscale, DESIGN.md §5) drives these against the
// predicted workload.
type FrontEnd struct {
	log trace.Sink
	// processingDelay artificially reproduces the paper's ≈150 ms
	// front-end overhead when non-zero (useful for demos; tests keep
	// it 0).
	processingDelay time.Duration

	mu       sync.Mutex
	backends map[int][]*backend
	rr       map[int]int
	routed   int64
	dropped  int64
}

// NewFrontEnd builds an empty front-end. log may be nil to disable
// request logging; a trace.Store, trace.Window, or trace.Tee all fit.
func NewFrontEnd(log trace.Sink, processingDelay time.Duration) (*FrontEnd, error) {
	if processingDelay < 0 {
		return nil, fmt.Errorf("sdn: negative processing delay %v", processingDelay)
	}
	// A typed-nil *trace.Store (the historical signature) must behave
	// like "logging disabled", not panic on first append.
	if s, ok := log.(*trace.Store); ok && s == nil {
		log = nil
	}
	if w, ok := log.(*trace.Window); ok && w == nil {
		log = nil
	}
	return &FrontEnd{
		log:             log,
		processingDelay: processingDelay,
		backends:        make(map[int][]*backend),
		rr:              make(map[int]int),
	}, nil
}

// find locates a backend by (group, url). Callers hold f.mu.
func (f *FrontEnd) find(group int, url string) *backend {
	for _, b := range f.backends[group] {
		if b.url == url {
			return b
		}
	}
	return nil
}

// Register adds a surrogate base URL under an acceleration group. A URL
// currently draining in the same group is re-activated in place (the
// un-drain path: a scale-up arriving before the drain completed), so
// flapping never loses a warm backend.
func (f *FrontEnd) Register(group int, baseURL string) error {
	if group < 0 {
		return fmt.Errorf("sdn: negative group %d", group)
	}
	if baseURL == "" {
		return errors.New("sdn: empty backend url")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if b := f.find(group, baseURL); b != nil {
		if b.state == BackendDraining {
			b.state = BackendActive
			return nil
		}
		return fmt.Errorf("sdn: backend %s already registered in group %d", baseURL, group)
	}
	f.backends[group] = append(f.backends[group], &backend{
		url:    baseURL,
		client: rpc.NewClient(baseURL),
		state:  BackendActive,
	})
	return nil
}

// Drain fences a backend off from new requests; in-flight requests
// complete normally. Draining an already-draining backend is a no-op.
func (f *FrontEnd) Drain(group int, baseURL string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.find(group, baseURL)
	if b == nil {
		return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	b.state = BackendDraining
	return nil
}

// Inflight reports a backend's current in-flight request count.
func (f *FrontEnd) Inflight(group int, baseURL string) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.find(group, baseURL)
	if b == nil {
		return 0, fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	return b.inflight, nil
}

// Remove deregisters an idle backend. It fails with ErrBackendBusy while
// requests are still in flight — drain first, then retry; the
// front-end never abandons accepted work.
func (f *FrontEnd) Remove(group int, baseURL string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	bs := f.backends[group]
	for i, b := range bs {
		if b.url != baseURL {
			continue
		}
		if b.inflight > 0 {
			return fmt.Errorf("%w: %s in group %d (%d in flight)", ErrBackendBusy, baseURL, group, b.inflight)
		}
		f.backends[group] = append(bs[:i:i], bs[i+1:]...)
		if len(f.backends[group]) == 0 {
			delete(f.backends, group)
			delete(f.rr, group)
		}
		return nil
	}
	return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
}

// Backends reports the registered groups and backend counts (active and
// draining alike — they are all still serving or finishing work).
func (f *FrontEnd) Backends() map[int]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[int]int, len(f.backends))
	for g, bs := range f.backends {
		out[g] = len(bs)
	}
	return out
}

// Pool snapshots one group's backends in registration order.
func (f *FrontEnd) Pool(group int) []BackendInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]BackendInfo, 0, len(f.backends[group]))
	for _, b := range f.backends[group] {
		out = append(out, BackendInfo{URL: b.url, State: b.state, Inflight: b.inflight})
	}
	return out
}

// ActiveCount reports how many of a group's backends accept new work.
func (f *FrontEnd) ActiveCount(group int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, b := range f.backends[group] {
		if b.state == BackendActive {
			n++
		}
	}
	return n
}

// pick selects the next active backend of a group round-robin and
// reserves an in-flight slot on it. Draining backends are never picked.
// Allocation-free: this sits on the request hot path.
func (f *FrontEnd) pick(group int) (*backend, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	bs := f.backends[group]
	nActive := 0
	for _, b := range bs {
		if b.state == BackendActive {
			nActive++
		}
	}
	if nActive == 0 {
		return nil, fmt.Errorf("sdn: no active backend for group %d", group)
	}
	k := f.rr[group] % nActive
	f.rr[group]++
	for _, b := range bs {
		if b.state != BackendActive {
			continue
		}
		if k == 0 {
			b.inflight++
			return b, nil
		}
		k--
	}
	// Unreachable: nActive > 0 guarantees the loop returns.
	return nil, fmt.Errorf("sdn: no active backend for group %d", group)
}

// release returns a picked backend's in-flight slot and folds the
// request's fate into the counters — one critical section, since this
// sits on the request hot path.
func (f *FrontEnd) release(b *backend, ok bool) {
	f.mu.Lock()
	b.inflight--
	if ok {
		f.routed++
	} else {
		f.dropped++
	}
	f.mu.Unlock()
}

// Handler serves the front-end protocol:
//
//	POST /offload  — route a client request to its acceleration group
//	GET  /healthz  — liveness
//	GET  /stats    — counters, backend registry, and per-backend states
func (f *FrontEnd) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(rpc.PathOffload, f.handleOffload)
	mux.HandleFunc(rpc.PathHealth, func(w http.ResponseWriter, r *http.Request) {
		rpc.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc(rpc.PathStats, func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		groups := make([]int, 0, len(f.backends))
		for g := range f.backends {
			groups = append(groups, g)
		}
		sort.Ints(groups)
		payload := struct {
			Routed   int64                 `json:"routed"`
			Dropped  int64                 `json:"dropped"`
			Groups   []int                 `json:"groups"`
			Backends map[int]int           `json:"backends"`
			Pools    map[int][]BackendInfo `json:"pools"`
		}{Routed: f.routed, Dropped: f.dropped, Groups: groups,
			Backends: map[int]int{}, Pools: map[int][]BackendInfo{}}
		for g, bs := range f.backends {
			payload.Backends[g] = len(bs)
			infos := make([]BackendInfo, 0, len(bs))
			for _, b := range bs {
				infos = append(infos, BackendInfo{URL: b.url, State: b.state, Inflight: b.inflight})
			}
			payload.Pools[g] = infos
		}
		f.mu.Unlock()
		rpc.WriteJSON(w, http.StatusOK, payload)
	})
	return mux
}

func (f *FrontEnd) handleOffload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rpc.WriteJSON(w, http.StatusMethodNotAllowed, rpc.OffloadResponse{Error: "POST only"})
		return
	}
	var req rpc.OffloadRequest
	if err := rpc.ReadJSON(r, &req); err != nil {
		rpc.WriteJSON(w, http.StatusBadRequest, rpc.OffloadResponse{Error: err.Error()})
		return
	}
	if err := req.Validate(); err != nil {
		rpc.WriteJSON(w, http.StatusBadRequest, rpc.OffloadResponse{Error: err.Error()})
		return
	}
	routeStart := time.Now()
	if f.processingDelay > 0 {
		time.Sleep(f.processingDelay)
	}
	picked, err := f.pick(req.Group)
	if err != nil {
		f.mu.Lock()
		f.dropped++
		f.mu.Unlock()
		rpc.WriteJSON(w, http.StatusServiceUnavailable, rpc.OffloadResponse{Error: err.Error()})
		return
	}
	routingMs := float64(time.Since(routeStart)) / float64(time.Millisecond)

	backendStart := time.Now()
	resp, err := picked.client.Execute(r.Context(), rpc.ExecuteRequest{State: req.State})
	backendTotalMs := float64(time.Since(backendStart)) / float64(time.Millisecond)
	f.release(picked, err == nil)
	if err != nil {
		rpc.WriteJSON(w, http.StatusBadGateway, rpc.OffloadResponse{Error: err.Error()})
		return
	}
	// T2 is the backend round trip minus the execution itself.
	t2Ms := backendTotalMs - resp.CloudMs
	if t2Ms < 0 {
		t2Ms = 0
	}
	if f.log != nil {
		total := time.Since(routeStart)
		battery := req.BatteryLevel
		// Log failures must not fail the request path.
		_ = f.log.Append(trace.Record{
			Timestamp:    time.Now(),
			UserID:       req.UserID,
			Group:        req.Group,
			BatteryLevel: battery,
			RTT:          total,
		})
	}
	rpc.WriteJSON(w, http.StatusOK, rpc.OffloadResponse{
		Result: resp.Result,
		Server: resp.Server,
		Group:  req.Group,
		Timings: rpc.Timings{
			RoutingMs: routingMs,
			BackendMs: t2Ms,
			CloudMs:   resp.CloudMs,
		},
	})
}

// WaitHealthy polls a server's health endpoint until it responds or the
// context expires — a convenience for cluster bring-up in examples and
// tests.
func WaitHealthy(ctx context.Context, baseURL string) error {
	client := rpc.NewClient(baseURL)
	for {
		if err := client.Health(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("sdn: %s never became healthy: %w", baseURL, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}
