package sdn

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accelcloud/internal/dalvik"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

func TestIdemCacheSingleflight(t *testing.T) {
	var c idemCache
	var executions atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, code := c.do(context.Background(), "k", func() (rpc.OffloadResponse, int) {
				executions.Add(1)
				<-release
				return rpc.OffloadResponse{Server: "s"}, http.StatusOK
			})
			results[i] = code
		}(i)
	}
	// Let every goroutine reach the cache before the leader finishes.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := executions.Load(); n != 1 {
		t.Fatalf("%d executions for one key, want 1", n)
	}
	for i, code := range results {
		if code != http.StatusOK {
			t.Fatalf("waiter %d got code %d", i, code)
		}
	}
	// Later duplicates of the cached success never re-execute.
	_, code := c.do(context.Background(), "k", func() (rpc.OffloadResponse, int) {
		executions.Add(1)
		return rpc.OffloadResponse{}, http.StatusOK
	})
	if code != http.StatusOK || executions.Load() != 1 {
		t.Fatalf("cached key re-executed (code %d, executions %d)", code, executions.Load())
	}
}

func TestIdemCacheForgetsFailures(t *testing.T) {
	var c idemCache
	calls := 0
	fail := func() (rpc.OffloadResponse, int) {
		calls++
		return rpc.OffloadResponse{Error: "boom"}, http.StatusBadGateway
	}
	if _, code := c.do(context.Background(), "k", fail); code != http.StatusBadGateway {
		t.Fatalf("code %d", code)
	}
	// The failure must not be cached: a genuine retry re-executes.
	if _, code := c.do(context.Background(), "k", fail); code != http.StatusBadGateway {
		t.Fatalf("code %d", code)
	}
	if calls != 2 {
		t.Fatalf("failed call executed %d times, want 2 (failures are not cached)", calls)
	}
	if got := c.len(); got != 0 {
		t.Fatalf("%d entries cached after failures, want 0", got)
	}
}

func TestIdemCacheWaiterTimeout(t *testing.T) {
	var c idemCache
	started := make(chan struct{})
	release := make(chan struct{})
	go c.do(context.Background(), "k", func() (rpc.OffloadResponse, int) {
		close(started)
		<-release
		return rpc.OffloadResponse{}, http.StatusOK
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	resp, code := c.do(ctx, "k", func() (rpc.OffloadResponse, int) {
		t.Error("duplicate executed while leader in flight")
		return rpc.OffloadResponse{}, http.StatusOK
	})
	if code != http.StatusGatewayTimeout || resp.Error == "" {
		t.Fatalf("timed-out waiter got code %d resp %+v", code, resp)
	}
	close(release)
}

func TestIdemCacheEvictsFIFO(t *testing.T) {
	var c idemCache
	ok := func() (rpc.OffloadResponse, int) { return rpc.OffloadResponse{}, http.StatusOK }
	for i := 0; i < idemCacheCap+10; i++ {
		c.do(context.Background(), fmt.Sprintf("k%d", i), ok)
	}
	if got := c.len(); got != idemCacheCap {
		t.Fatalf("cache holds %d entries, want cap %d", got, idemCacheCap)
	}
}

// countingCluster builds a front-end over one real surrogate whose
// /execute hits are counted — the ground truth for "did the task run
// twice".
func countingCluster(t *testing.T, delay time.Duration) (*httptest.Server, *atomic.Int64, *dalvik.Surrogate) {
	t.Helper()
	fe, err := New()
	if err != nil {
		t.Fatal(err)
	}
	sur, err := dalvik.NewSurrogate("surrogate-1", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := sur.PushPool(tasks.DefaultPool()); err != nil {
		t.Fatal(err)
	}
	var executes atomic.Int64
	base := sur.Handler()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == rpc.PathExecute {
			executes.Add(1)
			if delay > 0 {
				time.Sleep(delay)
			}
		}
		base.ServeHTTP(w, r)
	}))
	t.Cleanup(backend.Close)
	if err := fe.Register(1, backend.URL); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(fe.Handler())
	t.Cleanup(front.Close)
	return front, &executes, sur
}

// TestHedgedOffloadExecutesOnce proves the satellite contract for
// single calls: a hedge racing a slow primary reaches the front-end
// twice, but the side-effecting task runs exactly once — the hedge
// lane is absorbed by the idempotency cache.
func TestHedgedOffloadExecutesOnce(t *testing.T) {
	front, executes, _ := countingCluster(t, 60*time.Millisecond)
	client := rpc.NewClient(front.URL, rpc.WithHedge(&rpc.HedgePolicy{Delay: 10 * time.Millisecond}))

	st, err := tasks.Minimax{}.Generate(sim.NewRNG(7).Stream("gen"), 6)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Offload(context.Background(), rpc.OffloadRequest{
		UserID: 1, Group: 1, BatteryLevel: 0.8, State: st,
	})
	if err != nil {
		t.Fatalf("offload: %v", err)
	}
	if resp.Result.Task != "minimax" {
		t.Fatalf("resp = %+v", resp)
	}
	if hedges := client.Stats().Hedges; hedges == 0 {
		t.Fatal("hedge never launched; the test proved nothing")
	}
	if n := executes.Load(); n != 1 {
		t.Fatalf("task executed %d times under hedging, want 1", n)
	}
}

// TestHedgedBatchExecutesOnce is the batch form: a hedged 4-call chain
// re-sends the whole batch, and every call still executes exactly once.
func TestHedgedBatchExecutesOnce(t *testing.T) {
	front, executes, _ := countingCluster(t, 60*time.Millisecond)
	client := rpc.NewClient(front.URL, rpc.WithHedge(&rpc.HedgePolicy{Delay: 10 * time.Millisecond}))

	const chain = 4
	calls := make([]rpc.OffloadRequest, chain)
	gen := sim.NewRNG(11).Stream("gen")
	for i := range calls {
		st, err := tasks.Minimax{}.Generate(gen, 5)
		if err != nil {
			t.Fatal(err)
		}
		calls[i] = rpc.OffloadRequest{UserID: i, Group: 1, BatteryLevel: 0.8, State: st}
	}
	results, err := client.OffloadBatch(context.Background(), calls)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(results) != chain {
		t.Fatalf("%d results for %d calls", len(results), chain)
	}
	for i, res := range results {
		if res.Code != http.StatusOK || res.Resp.Result.Task != "minimax" {
			t.Fatalf("call %d: code %d resp %+v", i, res.Code, res.Resp)
		}
	}
	if hedges := client.Stats().Hedges; hedges == 0 {
		t.Fatal("hedge never launched; the test proved nothing")
	}
	if n := executes.Load(); n != chain {
		t.Fatalf("chain of %d executed %d backend calls under hedging, want exactly %d", chain, n, chain)
	}
}

// TestRetriedOffloadAfterFailureReExecutes pins the other half of the
// idempotency contract: failures are NOT cached, so a retry after a
// 5xx gets a fresh execution instead of a replayed failure.
func TestRetriedOffloadAfterFailureReExecutes(t *testing.T) {
	fe, err := New()
	if err != nil {
		t.Fatal(err)
	}
	sur, err := dalvik.NewSurrogate("surrogate-1", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := sur.PushPool(tasks.DefaultPool()); err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	base := sur.Handler()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == rpc.PathExecute && hits.Add(1) == 1 {
			// First attempt dies mid-flight: a transport-level failure
			// the client classifies as retryable.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("no hijacker")
				return
			}
			conn, _, _ := hj.Hijack()
			_ = conn.Close()
			return
		}
		base.ServeHTTP(w, r)
	}))
	t.Cleanup(backend.Close)
	if err := fe.Register(1, backend.URL); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(fe.Handler())
	t.Cleanup(front.Close)

	client := rpc.NewClient(front.URL, rpc.WithRetry(rpc.NewRetryPolicy(3, time.Millisecond, 10*time.Millisecond, 1)))
	st, err := tasks.Minimax{}.Generate(sim.NewRNG(3).Stream("gen"), 5)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Offload(context.Background(), rpc.OffloadRequest{
		UserID: 1, Group: 1, BatteryLevel: 0.8, State: st,
	})
	if err != nil {
		t.Fatalf("offload after retry: %v", err)
	}
	if resp.Result.Task != "minimax" {
		t.Fatalf("resp = %+v", resp)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("backend hit %d times, want 2 (fail, then fresh retry)", n)
	}
}

// TestHedgedOffloadAgainstQueuedBackendExecutesOnce is the serving-
// layer extension of the hedging contract: the backend sits behind a
// single-slot admission queue occupied by a plug request, so the
// hedged request's primary lane waits *queued* — not executing — when
// the hedge fires. The idempotency cache must still absorb the hedge:
// the plug and the hedged request each execute exactly once.
func TestHedgedOffloadAgainstQueuedBackendExecutesOnce(t *testing.T) {
	fe, err := New(WithQueue(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	sur, err := dalvik.NewSurrogate("surrogate-1", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := sur.PushPool(tasks.DefaultPool()); err != nil {
		t.Fatal(err)
	}
	var executes atomic.Int64
	base := sur.Handler()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == rpc.PathExecute {
			executes.Add(1)
			time.Sleep(60 * time.Millisecond)
		}
		base.ServeHTTP(w, r)
	}))
	t.Cleanup(backend.Close)
	if err := fe.Register(1, backend.URL); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(fe.Handler())
	t.Cleanup(front.Close)

	gen := sim.NewRNG(13).Stream("gen")
	plugState, err := tasks.Minimax{}.Generate(gen, 6)
	if err != nil {
		t.Fatal(err)
	}
	hedgedState, err := tasks.Minimax{}.Generate(gen, 6)
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the backend's only dispatch slot with the plug request.
	plugDone := make(chan error, 1)
	go func() {
		plain := rpc.NewClient(front.URL)
		_, err := plain.Offload(context.Background(), rpc.OffloadRequest{
			UserID: 99, Group: 1, BatteryLevel: 0.9, State: plugState,
		})
		plugDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // plug reaches the dispatcher

	client := rpc.NewClient(front.URL, rpc.WithHedge(&rpc.HedgePolicy{Delay: 10 * time.Millisecond}))
	resp, err := client.Offload(context.Background(), rpc.OffloadRequest{
		UserID: 1, Group: 1, BatteryLevel: 0.8, State: hedgedState,
	})
	if err != nil {
		t.Fatalf("hedged offload: %v", err)
	}
	if resp.Result.Task != "minimax" {
		t.Fatalf("resp = %+v", resp)
	}
	if err := <-plugDone; err != nil {
		t.Fatalf("plug offload: %v", err)
	}
	if hedges := client.Stats().Hedges; hedges == 0 {
		t.Fatal("hedge never launched; the test proved nothing")
	}
	// Plug + hedged request = exactly 2 backend executions: the hedge
	// lane was absorbed while its primary was still queued.
	if n := executes.Load(); n != 2 {
		t.Fatalf("backend executed %d times, want 2 (plug + hedged primary)", n)
	}
}
