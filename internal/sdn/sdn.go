// Package sdn implements the paper's cloud-based SDN-accelerator (§IV,
// §V): the front-end that receives offloading requests (Request Handler),
// routes each to an instance of the acceleration group the device asks
// for (Code Offloader), and logs every request for the workload predictor.
// The component adds ≈150 ms of processing overhead to each request
// (Fig 8a) — "a fair price to pay for tuning code execution on demand".
//
// Two planes are provided: a deterministic simulation plane used by the
// experiments (Accelerator) and a real HTTP front-end (FrontEnd) that
// reverse-proxies to dalvik surrogates.
package sdn

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/qsim"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/trace"
)

// OverheadModel generates the front-end's per-request routing time: a
// base cost with log-normal jitter, matching the ≈150 ms plateau of
// Fig 8a.
type OverheadModel struct {
	// Base is the deterministic floor of the routing time.
	Base time.Duration
	// Jitter is additional log-normal noise in milliseconds.
	Jitter stats.LogNormal
}

// DefaultOverhead reproduces the paper's measurement: ≈150 ms with tens
// of milliseconds of spread.
func DefaultOverhead() OverheadModel {
	// exp(μ)=25 ms median jitter, mild tail.
	return OverheadModel{
		Base:   125 * time.Millisecond,
		Jitter: stats.LogNormal{Mu: 3.2, Sigma: 0.35},
	}
}

// Sample draws one routing time.
func (m OverheadModel) Sample(r *rand.Rand) time.Duration {
	d := m.Base
	if m.Jitter.Sigma > 0 || m.Jitter.Mu != 0 {
		d += time.Duration(m.Jitter.Sample(r) * float64(time.Millisecond))
	}
	return d
}

// MeanMs reports the analytic mean routing time in milliseconds.
func (m OverheadModel) MeanMs() float64 {
	return float64(m.Base)/float64(time.Millisecond) + m.Jitter.Mean()
}

// Request is one offloading request entering the simulation-plane
// accelerator.
type Request struct {
	// UserID identifies the device.
	UserID int
	// Group is the requested acceleration group.
	Group int
	// Work is the task cost in work units.
	Work float64
	// BatteryLevel is logged with the trace record.
	BatteryLevel float64
	// AccessRTT is T1: the mobile↔front-end round trip (LTE in the
	// paper's deployment).
	AccessRTT time.Duration
}

// Outcome describes a routed request's fate.
type Outcome struct {
	// Dropped is true when no backend could accept the request.
	Dropped bool
	// Server is the serving instance id ("" when dropped).
	Server string
	// Group is the group that served the request.
	Group int
	// T1 is the mobile↔front-end communication time.
	T1 time.Duration
	// Routing is the SDN overhead.
	Routing time.Duration
	// T2 is the front-end↔back-end communication time.
	T2 time.Duration
	// Tcloud is queueing + execution on the instance.
	Tcloud time.Duration
	// Total is the response time perceived by the device.
	Total time.Duration
}

// Accelerator is the simulation-plane SDN front-end.
type Accelerator struct {
	env      *sim.Environment
	overhead OverheadModel
	// internalRTT is T2: cloud-internal communication, "less likely to
	// change drastically" (§VI-B2).
	internalRTT stats.Dist
	log         *trace.Store
	rng         *rand.Rand

	groups map[int][]*qsim.Server
	rr     map[int]int

	routed  int
	dropped int
	// routingMs records per-group routing overhead samples (Fig 8a).
	routingMs map[int]*stats.Welford
}

// Config parameterizes the simulation-plane accelerator.
type Config struct {
	// Overhead is the routing-cost model; zero value selects
	// DefaultOverhead.
	Overhead OverheadModel
	// InternalRTT is the T2 distribution in milliseconds; nil selects a
	// tight 4±1 ms normal (same-datacenter traffic).
	InternalRTT stats.Dist
	// Log receives one record per routed request; nil disables logging.
	Log *trace.Store
	// RNG drives overhead and T2 sampling; nil selects a fixed seed.
	RNG *rand.Rand
}

// NewAccelerator builds an empty front-end on the environment.
func NewAccelerator(env *sim.Environment, cfg Config) (*Accelerator, error) {
	if env == nil {
		return nil, errors.New("sdn: nil environment")
	}
	ov := cfg.Overhead
	if ov.Base == 0 && ov.Jitter.Mu == 0 && ov.Jitter.Sigma == 0 {
		ov = DefaultOverhead()
	}
	internal := cfg.InternalRTT
	if internal == nil {
		internal = stats.Normal{Mu: 4, Sigma: 1}
	}
	rng := cfg.RNG
	if rng == nil {
		rng = sim.NewRNG(1).Stream("sdn")
	}
	return &Accelerator{
		env:         env,
		overhead:    ov,
		internalRTT: internal,
		log:         cfg.Log,
		rng:         rng,
		groups:      make(map[int][]*qsim.Server),
		rr:          make(map[int]int),
		routingMs:   make(map[int]*stats.Welford),
	}, nil
}

// AddServer registers a backend instance under an acceleration group.
func (a *Accelerator) AddServer(group int, srv *qsim.Server) error {
	if group < 0 {
		return fmt.Errorf("sdn: negative group %d", group)
	}
	if srv == nil {
		return errors.New("sdn: nil server")
	}
	a.groups[group] = append(a.groups[group], srv)
	return nil
}

// RemoveServers drops all backends of a group (used when the allocator
// scales a group down; in-flight requests on the old servers complete).
func (a *Accelerator) RemoveServers(group int) {
	delete(a.groups, group)
	delete(a.rr, group)
}

// Servers lists the backends of a group.
func (a *Accelerator) Servers(group int) []*qsim.Server {
	out := make([]*qsim.Server, len(a.groups[group]))
	copy(out, a.groups[group])
	return out
}

// Groups lists the group indices that currently have backends.
func (a *Accelerator) Groups() []int {
	var out []int
	for g := range a.groups {
		out = append(out, g)
	}
	return out
}

// Stats reports routed/dropped counters.
func (a *Accelerator) Stats() (routed, dropped int) {
	return a.routed, a.dropped
}

// RoutingStats reports the per-group routing-overhead accumulator
// (Fig 8a series). The returned map must not be mutated.
func (a *Accelerator) RoutingStats() map[int]*stats.Welford {
	return a.routingMs
}

// pick selects the least-loaded backend of a group, breaking ties
// round-robin — the Code Offloader's routing decision.
func (a *Accelerator) pick(group int) (*qsim.Server, error) {
	servers := a.groups[group]
	if len(servers) == 0 {
		return nil, fmt.Errorf("sdn: no backend for group %d", group)
	}
	start := a.rr[group] % len(servers)
	a.rr[group] = (a.rr[group] + 1) % len(servers)
	best := servers[start]
	bestLoad := best.ActiveCount() + best.QueueLen()
	for i := 1; i < len(servers); i++ {
		s := servers[(start+i)%len(servers)]
		if load := s.ActiveCount() + s.QueueLen(); load < bestLoad {
			best, bestLoad = s, load
		}
	}
	return best, nil
}

// Route processes one request: after T1/2 uplink and the routing
// overhead, the task is submitted to a backend of the requested group;
// the completion callback fires after the result travels back. done is
// invoked exactly once.
func (a *Accelerator) Route(req Request, done func(Outcome)) error {
	if done == nil {
		return errors.New("sdn: nil completion callback")
	}
	if req.Work <= 0 {
		return fmt.Errorf("sdn: invalid work %v", req.Work)
	}
	if req.AccessRTT < 0 {
		return fmt.Errorf("sdn: negative access RTT %v", req.AccessRTT)
	}
	routing := a.overhead.Sample(a.rng)
	t2ms := a.internalRTT.Sample(a.rng)
	if t2ms < 0.1 {
		t2ms = 0.1
	}
	t2 := time.Duration(t2ms * float64(time.Millisecond))
	uplink := req.AccessRTT/2 + routing + t2/2
	downlink := t2/2 + req.AccessRTT/2

	if w := a.routingMs[req.Group]; w == nil {
		a.routingMs[req.Group] = &stats.Welford{}
	}
	a.routingMs[req.Group].Add(float64(routing) / float64(time.Millisecond))

	arrivedAt := a.env.Now()
	return a.env.Schedule(uplink, func() {
		srv, err := a.pick(req.Group)
		if err != nil {
			a.dropped++
			done(Outcome{Dropped: true, Group: req.Group, T1: req.AccessRTT, Routing: routing, T2: t2})
			return
		}
		a.routed++
		submitErr := srv.Submit(req.Work, func(o qsim.Outcome) {
			if o.Dropped {
				a.dropped++
				a.routed--
				done(Outcome{Dropped: true, Group: req.Group, Server: srv.Instance().ID(),
					T1: req.AccessRTT, Routing: routing, T2: t2})
				return
			}
			// Result travels back to the device.
			finish := func() {
				total := a.env.Now().Sub(arrivedAt)
				out := Outcome{
					Server:  srv.Instance().ID(),
					Group:   req.Group,
					T1:      req.AccessRTT,
					Routing: routing,
					T2:      t2,
					Tcloud:  o.Latency,
					Total:   total,
				}
				if a.log != nil {
					// Validated fields; appending cannot fail for
					// well-formed requests, and malformed ones were
					// rejected in Route.
					_ = a.log.Append(trace.Record{
						Timestamp:    a.env.Now(),
						UserID:       req.UserID,
						Group:        req.Group,
						BatteryLevel: req.BatteryLevel,
						RTT:          total,
					})
				}
				done(out)
			}
			if err := a.env.Schedule(downlink, finish); err != nil {
				// Scheduling forward cannot fail; guard for safety.
				finish()
			}
		})
		if submitErr != nil {
			a.routed--
			a.dropped++
			done(Outcome{Dropped: true, Group: req.Group, T1: req.AccessRTT, Routing: routing, T2: t2})
		}
	})
}

// BuildPool launches `count` instances of one type into a group,
// returning the servers (a helper for experiments that assemble
// back-ends by hand).
func BuildPool(env *sim.Environment, a *Accelerator, group int, typ cloud.InstanceType, count int, cfg qsim.Config) ([]*qsim.Server, error) {
	if count <= 0 {
		return nil, fmt.Errorf("sdn: count %d <= 0", count)
	}
	out := make([]*qsim.Server, 0, count)
	for i := 0; i < count; i++ {
		inst, err := cloud.NewInstance(fmt.Sprintf("%s-g%d-%d", typ.Name, group, i), typ, env.Now())
		if err != nil {
			return nil, err
		}
		srv, err := qsim.NewServer(env, inst, cfg)
		if err != nil {
			return nil, err
		}
		if err := a.AddServer(group, srv); err != nil {
			return nil, err
		}
		out = append(out, srv)
	}
	return out, nil
}
