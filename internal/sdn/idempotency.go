package sdn

import (
	"context"
	"net/http"
	"sync"

	"accelcloud/internal/rpc"
)

// idemCacheCap bounds the completed-call cache; beyond it the oldest
// keys are evicted FIFO. Sized for the retry/hedge window, not for
// history: a duplicate arrives within its call's deadline, so entries
// only need to outlive one resilience ladder.
const idemCacheCap = 8192

// idemEntry is one keyed call: in flight until done closes, then a
// cached outcome.
type idemEntry struct {
	done chan struct{}
	resp rpc.OffloadResponse
	code int
	ok   bool // success — entry stays cached; failures are forgotten
}

// idemCache is a singleflight-plus-cache keyed by idempotency key:
// the first request with a key executes ("leader"), concurrent
// duplicates wait for the leader's outcome, and later duplicates of a
// successful call are served from cache. Failed calls are evicted on
// completion so a genuine retry re-executes instead of replaying the
// failure forever. The zero value is ready to use.
type idemCache struct {
	mu    sync.Mutex
	m     map[string]*idemEntry
	order []string // FIFO eviction of cached keys
}

// do runs fn under the key's singleflight. The leader's outcome is
// returned to every waiter; a waiter whose context expires first gets
// a 504 without disturbing the leader.
func (c *idemCache) do(ctx context.Context, key string, fn func() (rpc.OffloadResponse, int)) (rpc.OffloadResponse, int) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*idemEntry)
	}
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			return e.resp, e.code
		case <-ctx.Done():
			return rpc.OffloadResponse{Error: "sdn: idempotent duplicate timed out waiting for the original call"},
				http.StatusGatewayTimeout
		}
	}
	e := &idemEntry{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()

	e.resp, e.code = fn()
	e.ok = e.code == http.StatusOK && e.resp.Error == ""

	c.mu.Lock()
	if !e.ok {
		// Forget failures: the next duplicate is a real retry and must
		// re-execute.
		delete(c.m, key)
	} else {
		c.order = append(c.order, key)
		for len(c.order) > idemCacheCap {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.m, evict)
		}
	}
	c.mu.Unlock()
	close(e.done)
	return e.resp, e.code
}

// len reports the cached (completed) plus in-flight entry count.
func (c *idemCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
