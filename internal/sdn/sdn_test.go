package sdn

import (
	"math"
	"testing"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/qsim"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/trace"
)

func newAccel(t *testing.T, env *sim.Environment, log *trace.Store) *Accelerator {
	t.Helper()
	a, err := NewAccelerator(env, Config{
		Overhead:    OverheadModel{Base: 150 * time.Millisecond},
		InternalRTT: stats.Degenerate{Value: 4},
		Log:         log,
		RNG:         sim.NewRNG(1).Stream("test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func addBackend(t *testing.T, env *sim.Environment, a *Accelerator, group int, typeName string) *qsim.Server {
	t.Helper()
	typ, err := cloud.DefaultCatalog().ByName(typeName)
	if err != nil {
		t.Fatal(err)
	}
	servers, err := BuildPool(env, a, group, typ, 1, qsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return servers[0]
}

func TestRouteHappyPath(t *testing.T) {
	env := sim.NewEnvironment()
	log := trace.NewStore()
	a := newAccel(t, env, log)
	addBackend(t, env, a, 1, "t2.small")

	var got Outcome
	err := a.Route(Request{
		UserID: 7, Group: 1, Work: 100_000, BatteryLevel: 0.8,
		AccessRTT: 40 * time.Millisecond,
	}, func(o Outcome) { got = o })
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Dropped {
		t.Fatal("request should succeed")
	}
	// Components: T1 = 40 ms, routing = 150 ms, T2 = 4 ms, Tcloud =
	// 500 ms; total = 694 ms.
	want := 694 * time.Millisecond
	if d := got.Total - want; d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("total = %v, want ≈%v", got.Total, want)
	}
	if got.T1 != 40*time.Millisecond || got.Routing != 150*time.Millisecond {
		t.Fatalf("components = %+v", got)
	}
	if got.Tcloud < 499*time.Millisecond || got.Tcloud > 501*time.Millisecond {
		t.Fatalf("Tcloud = %v, want ≈500ms", got.Tcloud)
	}
	if got.Server == "" || got.Group != 1 {
		t.Fatalf("server/group = %q/%d", got.Server, got.Group)
	}
	// Trace record logged with the total response time.
	if log.Len() != 1 {
		t.Fatalf("log has %d records", log.Len())
	}
	rec := log.Snapshot()[0]
	if rec.UserID != 7 || rec.Group != 1 || rec.BatteryLevel != 0.8 {
		t.Fatalf("record = %+v", rec)
	}
	if d := rec.RTT - want; d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("record RTT = %v", rec.RTT)
	}
	routed, dropped := a.Stats()
	if routed != 1 || dropped != 0 {
		t.Fatalf("stats = %d/%d", routed, dropped)
	}
}

func TestRouteNoBackend(t *testing.T) {
	env := sim.NewEnvironment()
	a := newAccel(t, env, nil)
	var got Outcome
	if err := a.Route(Request{UserID: 1, Group: 3, Work: 100}, func(o Outcome) { got = o }); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !got.Dropped {
		t.Fatal("request to empty group must drop")
	}
	routed, dropped := a.Stats()
	if routed != 0 || dropped != 1 {
		t.Fatalf("stats = %d/%d", routed, dropped)
	}
}

func TestRouteValidation(t *testing.T) {
	env := sim.NewEnvironment()
	a := newAccel(t, env, nil)
	if err := a.Route(Request{Work: 0}, func(Outcome) {}); err == nil {
		t.Fatal("zero work should fail")
	}
	if err := a.Route(Request{Work: 1}, nil); err == nil {
		t.Fatal("nil callback should fail")
	}
	if err := a.Route(Request{Work: 1, AccessRTT: -time.Second}, func(Outcome) {}); err == nil {
		t.Fatal("negative RTT should fail")
	}
	if err := a.AddServer(-1, nil); err == nil {
		t.Fatal("negative group should fail")
	}
	if err := a.AddServer(0, nil); err == nil {
		t.Fatal("nil server should fail")
	}
	if _, err := NewAccelerator(nil, Config{}); err == nil {
		t.Fatal("nil env should fail")
	}
}

func TestLeastLoadedRouting(t *testing.T) {
	env := sim.NewEnvironment()
	a := newAccel(t, env, nil)
	s1 := addBackend(t, env, a, 0, "t2.small")
	s2 := addBackend(t, env, a, 0, "t2.small")

	// Two long requests: they must land on different servers.
	for i := 0; i < 2; i++ {
		if err := a.Route(Request{UserID: i, Group: 0, Work: 200_000}, func(Outcome) {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if s1.Stats().Completed != 1 || s2.Stats().Completed != 1 {
		t.Fatalf("load not spread: %d/%d", s1.Stats().Completed, s2.Stats().Completed)
	}
}

// Fig 8a: the routing overhead is ≈150 ms for every acceleration group.
func TestRoutingOverheadMatchesPaper(t *testing.T) {
	env := sim.NewEnvironment()
	a, err := NewAccelerator(env, Config{RNG: sim.NewRNG(2).Stream("ov")})
	if err != nil {
		t.Fatal(err)
	}
	for g := 1; g <= 4; g++ {
		addBackend(t, env, a, g, "t2.small")
	}
	done := 0
	for i := 0; i < 400; i++ {
		g := 1 + i%4
		if err := a.Route(Request{UserID: i, Group: g, Work: 1000}, func(Outcome) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 400 {
		t.Fatalf("completed %d/400", done)
	}
	for g := 1; g <= 4; g++ {
		w := a.RoutingStats()[g]
		if w == nil || w.N() != 100 {
			t.Fatalf("group %d missing routing samples", g)
		}
		if math.Abs(w.Mean()-150) > 20 {
			t.Fatalf("group %d routing mean %.1f ms, want ≈150 ms", g, w.Mean())
		}
	}
}

func TestDefaultOverheadMean(t *testing.T) {
	m := DefaultOverhead()
	if math.Abs(m.MeanMs()-152)/152 > 0.1 {
		t.Fatalf("default overhead mean %.1f ms, want ≈150 ms", m.MeanMs())
	}
	r := sim.NewRNG(3).Stream("ov")
	var w stats.Welford
	for i := 0; i < 5000; i++ {
		w.Add(float64(m.Sample(r)) / float64(time.Millisecond))
	}
	if math.Abs(w.Mean()-150) > 15 {
		t.Fatalf("sampled overhead mean %.1f ms, want ≈150 ms", w.Mean())
	}
}

func TestRemoveServers(t *testing.T) {
	env := sim.NewEnvironment()
	a := newAccel(t, env, nil)
	addBackend(t, env, a, 0, "t2.small")
	if len(a.Servers(0)) != 1 {
		t.Fatal("server not registered")
	}
	if len(a.Groups()) != 1 {
		t.Fatal("groups wrong")
	}
	a.RemoveServers(0)
	if len(a.Servers(0)) != 0 {
		t.Fatal("servers not removed")
	}
}

func TestBuildPoolValidation(t *testing.T) {
	env := sim.NewEnvironment()
	a := newAccel(t, env, nil)
	typ, _ := cloud.DefaultCatalog().ByName("t2.small")
	if _, err := BuildPool(env, a, 0, typ, 0, qsim.Config{}); err == nil {
		t.Fatal("count 0 should fail")
	}
	if _, err := BuildPool(env, a, 0, cloud.InstanceType{}, 1, qsim.Config{}); err == nil {
		t.Fatal("invalid type should fail")
	}
}
