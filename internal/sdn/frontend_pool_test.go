package sdn

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accelcloud/internal/dalvik"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

// countingBackend is one surrogate behind a request counter.
type countingBackend struct {
	srv  *httptest.Server
	hits atomic.Int64
}

func newCountingBackend(t *testing.T, name string) *countingBackend {
	t.Helper()
	sur, err := dalvik.NewSurrogate(name, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := sur.PushPool(tasks.DefaultPool()); err != nil {
		t.Fatal(err)
	}
	cb := &countingBackend{}
	handler := sur.Handler()
	cb.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == rpc.PathExecute {
			cb.hits.Add(1)
		}
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(cb.srv.Close)
	return cb
}

func TestFrontEndPoolLifecycle(t *testing.T) {
	fe, err := New()
	if err != nil {
		t.Fatal(err)
	}
	b := newCountingBackend(t, "s-1")
	if err := fe.Register(1, b.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := fe.Register(1, b.srv.URL); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	if err := fe.Drain(1, b.srv.URL); err != nil {
		t.Fatal(err)
	}
	if got := fe.ActiveCount(1); got != 0 {
		t.Fatalf("active = %d after drain", got)
	}
	// Re-registering a draining backend re-activates it in place.
	if err := fe.Register(1, b.srv.URL); err != nil {
		t.Fatal(err)
	}
	if got := fe.ActiveCount(1); got != 1 {
		t.Fatalf("active = %d after un-drain", got)
	}
	if err := fe.Drain(2, b.srv.URL); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("drain of unknown backend: %v", err)
	}
	if err := fe.Remove(1, b.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := fe.Remove(1, b.srv.URL); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("second remove: %v", err)
	}
	if len(fe.Pool(1)) != 0 {
		t.Fatal("pool not empty after remove")
	}
}

func TestFrontEndRemoveRefusesInFlight(t *testing.T) {
	fe, err := New()
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == rpc.PathExecute {
			<-release
		}
		rpc.WriteJSON(w, http.StatusOK, rpc.ExecuteResponse{Server: "slow"})
	}))
	t.Cleanup(slow.Close)
	t.Cleanup(func() { close(release) })
	if err := fe.Register(1, slow.URL); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(fe.Handler())
	t.Cleanup(front.Close)
	client := rpc.NewClient(front.URL)

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = client.Offload(context.Background(), rpc.OffloadRequest{
			UserID: 1, Group: 1, BatteryLevel: 1, State: tasks.State{Task: "sieve", Size: 1},
		})
	}()
	// Wait for the request to be in flight on the backend.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := fe.Inflight(1, slow.URL)
		if err != nil {
			t.Fatal(err)
		}
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	if err := fe.Drain(1, slow.URL); err != nil {
		t.Fatal(err)
	}
	if err := fe.Remove(1, slow.URL); !errors.Is(err, ErrBackendBusy) {
		t.Fatalf("remove with in-flight work: %v", err)
	}
	release <- struct{}{}
	<-done
	if n, err := fe.Inflight(1, slow.URL); err != nil || n != 0 {
		t.Fatalf("inflight = %d, %v", n, err)
	}
	if err := fe.Remove(1, slow.URL); err != nil {
		t.Fatal(err)
	}
}

// TestFrontEndPoolMutationUnderLoad hammers the front-end from many
// client goroutines while backends are concurrently added, drained, and
// removed. Invariants: no request ever errors (in-flight work survives
// every mutation, and at least one active backend exists throughout),
// and once a drained backend quiesces it never receives another
// request.
func TestFrontEndPoolMutationUnderLoad(t *testing.T) {
	fe, err := New()
	if err != nil {
		t.Fatal(err)
	}
	const group = 1
	stable := newCountingBackend(t, "stable") // never removed
	victim := newCountingBackend(t, "victim") // drained mid-load
	late := newCountingBackend(t, "late")     // added mid-load
	if err := fe.Register(group, stable.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := fe.Register(group, victim.srv.URL); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(fe.Handler())
	t.Cleanup(front.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var clientErrs atomic.Int64
	var sent atomic.Int64
	var wg sync.WaitGroup
	const clients = 8
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := rpc.NewClient(front.URL)
			r := sim.NewRNG(int64(c)).Stream("pool-load")
			for i := 0; ctx.Err() == nil; i++ {
				st, err := tasks.Sieve{}.Generate(r, 1)
				if err != nil {
					clientErrs.Add(1)
					return
				}
				_, err = client.Offload(ctx, rpc.OffloadRequest{
					UserID: c*1000 + i, Group: group, BatteryLevel: 1, State: st,
				})
				if err != nil && ctx.Err() == nil {
					t.Errorf("client %d request %d: %v", c, i, err)
					clientErrs.Add(1)
					return
				}
				sent.Add(1)
			}
		}()
	}

	// Let load build, then mutate the pool while it flows.
	waitSent := func(n int64) {
		deadline := time.Now().Add(10 * time.Second)
		for sent.Load() < n {
			if time.Now().After(deadline) {
				t.Fatalf("load generator stalled at %d requests", sent.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitSent(50)
	if err := fe.Register(group, late.srv.URL); err != nil {
		t.Fatal(err)
	}
	waitSent(100)
	if err := fe.Drain(group, victim.srv.URL); err != nil {
		t.Fatal(err)
	}
	// Quiesce: wait for the victim's in-flight count to reach zero.
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, err := fe.Inflight(group, victim.srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never quiesced (%d in flight)", n)
		}
		time.Sleep(time.Millisecond)
	}
	quiesced := victim.hits.Load()
	waitSent(sent.Load() + 100) // plenty of traffic after the quiesce point
	if got := victim.hits.Load(); got != quiesced {
		t.Fatalf("drained backend served %d new requests after quiescing", got-quiesced)
	}
	if err := fe.Remove(group, victim.srv.URL); err != nil {
		t.Fatal(err)
	}
	waitSent(sent.Load() + 50)
	cancel()
	wg.Wait()

	if n := clientErrs.Load(); n != 0 {
		t.Fatalf("%d client errors during pool mutation", n)
	}
	if late.hits.Load() == 0 {
		t.Fatal("late backend never received traffic")
	}
	if stable.hits.Load() == 0 {
		t.Fatal("stable backend never received traffic")
	}
	if got := fmt.Sprint(fe.Backends()); got != fmt.Sprint(map[int]int{group: 2}) {
		t.Fatalf("final backends = %s", got)
	}
}
