package sdn

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accelcloud/internal/dalvik"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
	"accelcloud/internal/trace"
)

// newCluster spins up two surrogate groups behind a front-end, all over
// real sockets.
func newCluster(t *testing.T, log *trace.Store) (*httptest.Server, *FrontEnd) {
	t.Helper()
	fe, err := New(WithTrace(log))
	if err != nil {
		t.Fatal(err)
	}
	for group := 1; group <= 2; group++ {
		sur, err := dalvik.NewSurrogate("surrogate-g"+string(rune('0'+group)), 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := sur.PushPool(tasks.DefaultPool()); err != nil {
			t.Fatal(err)
		}
		backend := httptest.NewServer(sur.Handler())
		t.Cleanup(backend.Close)
		if err := fe.Register(group, backend.URL); err != nil {
			t.Fatal(err)
		}
	}
	front := httptest.NewServer(fe.Handler())
	t.Cleanup(front.Close)
	return front, fe
}

func TestFrontEndEndToEnd(t *testing.T) {
	log := trace.NewStore()
	front, fe := newCluster(t, log)
	client := rpc.NewClient(front.URL)
	ctx := context.Background()

	if err := WaitHealthy(ctx, front.URL); err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(1).Stream("gen")
	st, err := tasks.Minimax{}.Generate(r, 7)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Offload(ctx, rpc.OffloadRequest{
		UserID: 3, Group: 1, BatteryLevel: 0.9, State: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Group != 1 || resp.Result.Task != "minimax" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Server == "" {
		t.Fatal("server not reported")
	}
	if resp.Timings.CloudMs < 0 || resp.Timings.BackendMs < 0 || resp.Timings.RoutingMs < 0 {
		t.Fatalf("timings = %+v", resp.Timings)
	}
	if log.Len() != 1 {
		t.Fatalf("log has %d records", log.Len())
	}
	rec := log.Snapshot()[0]
	if rec.UserID != 3 || rec.Group != 1 {
		t.Fatalf("record = %+v", rec)
	}
	if got := fe.Backends(); got[1] != 1 || got[2] != 1 {
		t.Fatalf("backends = %v", got)
	}
}

func TestFrontEndUnknownGroup(t *testing.T) {
	front, _ := newCluster(t, nil)
	client := rpc.NewClient(front.URL)
	r := sim.NewRNG(2).Stream("gen")
	st, err := tasks.Sieve{}.Generate(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Offload(context.Background(), rpc.OffloadRequest{
		UserID: 1, Group: 9, BatteryLevel: 1, State: st,
	})
	if err == nil {
		t.Fatal("unknown group should fail")
	}
}

func TestFrontEndValidatesRequests(t *testing.T) {
	front, _ := newCluster(t, nil)
	client := rpc.NewClient(front.URL)
	// Client-side validation rejects before the wire.
	if _, err := client.Offload(context.Background(), rpc.OffloadRequest{
		UserID: -1, Group: 1, State: tasks.State{Task: "sieve"},
	}); err == nil {
		t.Fatal("negative user should fail")
	}
	if _, err := client.Offload(context.Background(), rpc.OffloadRequest{
		UserID: 1, Group: 1, BatteryLevel: 2, State: tasks.State{Task: "sieve"},
	}); err == nil {
		t.Fatal("battery > 1 should fail")
	}
	if _, err := client.Offload(context.Background(), rpc.OffloadRequest{
		UserID: 1, Group: 1, State: tasks.State{},
	}); err == nil {
		t.Fatal("empty state should fail")
	}
}

func TestFrontEndRoundRobin(t *testing.T) {
	fe, err := New()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	hits := map[string]int{}
	for _, name := range []string{"a", "b"} {
		name := name
		sur, err := dalvik.NewSurrogate(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := sur.PushPool(tasks.DefaultPool()); err != nil {
			t.Fatal(err)
		}
		base := sur.Handler()
		counting := httptest.NewServer(wrapCount(base, func() {
			mu.Lock()
			hits[name]++
			mu.Unlock()
		}))
		t.Cleanup(counting.Close)
		if err := fe.Register(0, counting.URL); err != nil {
			t.Fatal(err)
		}
	}
	front := httptest.NewServer(fe.Handler())
	t.Cleanup(front.Close)
	client := rpc.NewClient(front.URL)
	r := sim.NewRNG(3).Stream("gen")
	for i := 0; i < 6; i++ {
		st, err := tasks.Fibonacci{}.Generate(r, 100)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Offload(context.Background(), rpc.OffloadRequest{
			UserID: i, Group: 0, BatteryLevel: 1, State: st,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if hits["a"] != 3 || hits["b"] != 3 {
		t.Fatalf("round robin skewed: %v", hits)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(WithRouteDelay(-time.Second)); err == nil {
		t.Fatal("negative delay should fail")
	}
	fe, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Register(-1, "http://x"); err == nil {
		t.Fatal("negative group should fail")
	}
	if err := fe.Register(0, ""); err == nil {
		t.Fatal("empty url should fail")
	}
}

func TestWaitHealthyTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := WaitHealthy(ctx, "http://127.0.0.1:1")
	if err == nil {
		t.Fatal("unreachable server should time out")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error should wrap the context deadline: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout not honored: waited %v", elapsed)
	}
}

func TestWaitHealthyCancel(t *testing.T) {
	// A server that never reports healthy: WaitHealthy must return as
	// soon as the caller cancels, wrapping context.Canceled.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "warming up", http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- WaitHealthy(ctx, srv.URL) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled wait should fail")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error should wrap context.Canceled: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitHealthy did not observe cancellation")
	}
}

func TestWaitHealthyRecovers(t *testing.T) {
	// The server is unhealthy for the first polls and then comes up;
	// WaitHealthy must return nil once it does.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			http.Error(w, "booting", http.StatusServiceUnavailable)
			return
		}
		rpc.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := WaitHealthy(ctx, srv.URL); err != nil {
		t.Fatalf("server recovered but WaitHealthy failed: %v", err)
	}
	if n := calls.Load(); n < 4 {
		t.Fatalf("expected at least 4 polls, saw %d", n)
	}
}

// wrapCount invokes fn on every request before delegating to next.
func wrapCount(next http.Handler, fn func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fn()
		next.ServeHTTP(w, r)
	})
}
