package sdn

import (
	"accelcloud/internal/obs"
)

// feMetrics is the front-end's hot-path instrumentation, built only
// when New ran WithMetrics — a nil *feMetrics keeps the request path
// free of even atomic loads, which is the "off" arm of the
// instrumentation-overhead A/B.
type feMetrics struct {
	offloads  *obs.Counter   // accepted offloads routed to a backend
	errors    *obs.Counter   // offloads that returned a non-200
	sampled   *obs.Counter   // trace-sampled offloads (span assembled)
	latency   *obs.Histogram // end-to-end front-end latency
	hopQueue  *obs.Histogram
	hopLinger *obs.Histogram
	hopCold   *obs.Histogram
	hopNet    *obs.Histogram
	hopExec   *obs.Histogram
}

// newFeMetrics registers the front-end's series. Router totals,
// spillover, and backend counts export as scrape-time funcs — they
// read counters the data plane already maintains, so exposing them
// costs the hot path nothing.
func newFeMetrics(reg *obs.Registry, f *FrontEnd) *feMetrics {
	m := &feMetrics{
		offloads:  reg.Counter("accel_offloads_total", "offload requests routed to a backend"),
		errors:    reg.Counter("accel_offload_errors_total", "offload requests answered non-200"),
		sampled:   reg.Counter("accel_spans_sampled_total", "trace-sampled offloads (per-hop span assembled)"),
		latency:   reg.Histogram("accel_request_latency_ms", "end-to-end front-end latency"),
		hopQueue:  reg.Histogram("accel_hop_latency_ms", "per-hop latency breakdown", "hop", "queue"),
		hopLinger: reg.Histogram("accel_hop_latency_ms", "per-hop latency breakdown", "hop", "linger"),
		hopCold:   reg.Histogram("accel_hop_latency_ms", "per-hop latency breakdown", "hop", "cold"),
		hopNet:    reg.Histogram("accel_hop_latency_ms", "per-hop latency breakdown", "hop", "network"),
		hopExec:   reg.Histogram("accel_hop_latency_ms", "per-hop latency breakdown", "hop", "exec"),
	}
	reg.CounterFunc("accel_routed_total", "requests the router released successfully",
		func() float64 { return float64(f.rt.Stats().Routed) })
	reg.CounterFunc("accel_dropped_total", "requests dropped for want of a backend",
		func() float64 { return float64(f.rt.Stats().Dropped) })
	reg.CounterFunc("accel_spilled_total", "cross-region requests absorbed",
		func() float64 { return float64(f.Spilled()) })
	reg.GaugeFunc("accel_backend_groups", "registered acceleration groups",
		func() float64 { return float64(len(f.Backends())) })
	return m
}
