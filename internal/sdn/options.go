package sdn

import (
	"fmt"
	"sync/atomic"
	"time"

	"accelcloud/internal/obs"
	"accelcloud/internal/router"
	"accelcloud/internal/serve"
	"accelcloud/internal/trace"
)

// Option configures a FrontEnd at construction. The functional-options
// constructor New replaces the historical positional constructors
// (NewFrontEnd, NewFrontEndWithPolicy) and post-hoc mutators
// (SetObserver, SetBackendTimeout): a built front-end is fully
// configured before it serves its first request, and new serving knobs
// (queueing, batching, cold pools) land as options instead of another
// constructor variant.
type Option func(*config) error

type config struct {
	log            trace.Sink
	routeDelay     time.Duration
	policy         router.Policy
	observer       Observer
	backendTimeout time.Duration
	serve          serve.Config
	coldAfter      time.Duration
	coldStart      time.Duration
	region         string
	metrics        *obs.Registry
}

// WithTrace installs the request trace sink (a trace.Store,
// trace.Window, trace.Async, or trace.Tee all fit; nil disables
// logging).
func WithTrace(log trace.Sink) Option {
	return func(c *config) error {
		// A typed-nil *trace.Store or *trace.Window must behave like
		// "logging disabled", not panic on first append.
		if s, ok := log.(*trace.Store); ok && s == nil {
			log = nil
		}
		if w, ok := log.(*trace.Window); ok && w == nil {
			log = nil
		}
		c.log = log
		return nil
	}
}

// WithRouteDelay reproduces the paper's fixed SDN processing overhead
// (≈150 ms in Fig 7a) as an artificial per-request routing delay.
func WithRouteDelay(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("sdn: negative processing delay %v", d)
		}
		c.routeDelay = d
		return nil
	}
}

// WithPolicy selects the pick policy (router.ParsePolicy resolves the
// -policy flag names); nil selects round-robin.
func WithPolicy(p router.Policy) Option {
	return func(c *config) error {
		c.policy = p
		return nil
	}
}

// WithObserver installs the per-request outcome hook the failure
// detector subscribes to. The hook runs on the request path after
// every backend hop — keep it cheap and non-blocking;
// internal/health's Manager.Observe qualifies. For the
// front-end-before-detector construction order, bind through an
// ObserverRef.
func WithObserver(ob Observer) Option {
	return func(c *config) error {
		c.observer = ob
		return nil
	}
}

// WithBackendTimeout bounds the proxy hop to each backend (0 keeps the
// rpc default). A crashed or hung surrogate must fail the hop within
// the failure detector's horizon, not the 30 s default.
func WithBackendTimeout(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("sdn: negative backend timeout %v", d)
		}
		c.backendTimeout = d
		return nil
	}
}

// WithQueue puts a bounded admission queue in front of every backend:
// at most limit concurrent dispatches per backend, at most depth
// requests waiting (depth 0 selects serve.DefaultDepth). A full queue
// rejects with serve.ErrQueueFull backpressure and Pick steers around
// saturated backends.
func WithQueue(limit, depth int) Option {
	return func(c *config) error {
		c.serve.Limit = limit
		c.serve.Depth = depth
		return nil
	}
}

// WithBatching coalesces queued same-task calls into one batch
// execution per dispatch: up to maxBatch calls, waiting at most linger
// for the queue to yield more (linger 0 selects serve.DefaultLinger).
// Requires WithQueue.
func WithBatching(maxBatch int, linger time.Duration) Option {
	return func(c *config) error {
		c.serve.MaxBatch = maxBatch
		c.serve.Linger = linger
		return nil
	}
}

// WithColdPool enables scale-to-zero: SweepCold parks backends idle
// for at least after, and the first request that reactivates a parked
// backend pays coldStart of activation latency (charged into the
// autoscale cost model via TakeActivations).
func WithColdPool(after, coldStart time.Duration) Option {
	return func(c *config) error {
		if after <= 0 {
			return fmt.Errorf("sdn: cold-pool idle threshold %v <= 0", after)
		}
		if coldStart < 0 {
			return fmt.Errorf("sdn: negative cold-start latency %v", coldStart)
		}
		c.coldAfter = after
		c.coldStart = coldStart
		return nil
	}
}

// WithRegion names the geographic region this front-end serves (e.g.
// "eu-north"). A regioned front-end counts requests whose Origin names
// a different home region as spilled-over — the /stats signal that
// cross-region traffic is landing here (DESIGN.md §11). Empty (the
// default) disables the accounting.
func WithRegion(name string) Option {
	return func(c *config) error {
		c.region = name
		return nil
	}
}

// WithMetrics registers the front-end's hot-path metrics (offload
// counts, error counts, end-to-end and per-hop latency histograms,
// plus scrape-time router/spillover gauges) in reg, for exposition at
// GET /metrics. Nil (the default) disables instrumentation entirely —
// the request path then carries no metric loads at all, which is the
// "off" arm of obsbench's overhead A/B.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *config) error {
		c.metrics = reg
		return nil
	}
}

// New builds a front-end from functional options. Zero options give a
// round-robin router with no trace sink, no queueing, and no cold
// pool — the historical NewFrontEnd(nil, 0) behaviour.
func New(opts ...Option) (*FrontEnd, error) {
	var c config
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	if err := c.serve.Validate(); err != nil {
		return nil, err
	}
	rt := router.New(c.policy)
	rt.SetClientTimeout(c.backendTimeout)
	if err := rt.SetServeConfig(c.serve); err != nil {
		return nil, err
	}
	f := &FrontEnd{
		log:             c.log,
		processingDelay: c.routeDelay,
		rt:              rt,
		coldAfter:       c.coldAfter,
		coldStart:       c.coldStart,
		region:          c.region,
	}
	if c.observer != nil {
		f.observer.Store(&c.observer)
	}
	if c.metrics != nil {
		f.metrics = newFeMetrics(c.metrics, f)
	}
	return f, nil
}

// ObserverRef late-binds an Observer so construction cycles resolve
// without mutators: the front-end is built with WithObserver(ref.Observe),
// the failure detector is built against the front-end, and ref.Set
// then points the hook at the detector. Unset, Observe is a no-op.
// Set is atomic, so binding after traffic has started is race-free.
type ObserverRef struct {
	p atomic.Pointer[Observer]
}

// Set binds (or, with nil, unbinds) the target observer.
func (r *ObserverRef) Set(ob Observer) {
	if ob == nil {
		r.p.Store(nil)
		return
	}
	r.p.Store(&ob)
}

// Observe forwards to the bound observer, dropping the call when none
// is bound yet.
func (r *ObserverRef) Observe(group int, url string, err error, latencyMs float64) {
	if ob := r.p.Load(); ob != nil {
		(*ob)(group, url, err, latencyMs)
	}
}
